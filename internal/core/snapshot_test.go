package core

import (
	"bytes"
	"errors"
	"testing"

	"alic/internal/evaluator"
	"alic/internal/snapshot"
)

// snapLearner builds a learner over a fresh engine on a pure source —
// a new process restoring a snapshot constructs exactly this: same
// options, same pool, a brand-new engine whose ledger is then
// restored, and a source that reproduces measurement (item, ordinal)
// pairs bit-identically.
func snapLearner(t *testing.T, opts Options, pool SlicePool, workers int) *Learner {
	t.Helper()
	eng := evaluator.New(&pureSource{pool: pool, fn: stepFn, sigma: 0.05, compileCost: 0.1, seed: 7},
		evaluator.Options{Workers: workers})
	l, err := NewWithEvaluator(opts, pool, eng, testEval(stepFn))
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func runToEnd(t *testing.T, l *Learner) *Result {
	t.Helper()
	for {
		more, err := l.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !more {
			break
		}
	}
	return l.Result()
}

// requireSameRun asserts two completed runs are bit-identical: every
// counter, the exact cost, the full learning curve, and the model's
// predictions over a probe grid.
func requireSameRun(t *testing.T, got, want *Result) {
	t.Helper()
	if got.Acquired != want.Acquired || got.Observations != want.Observations ||
		got.Unique != want.Unique || got.Revisits != want.Revisits {
		t.Fatalf("bookkeeping diverged: got %+v want %+v", got, want)
	}
	if got.Cost != want.Cost {
		t.Fatalf("cost diverged: %v vs %v", got.Cost, want.Cost)
	}
	if got.StoppedBy != want.StoppedBy {
		t.Fatalf("stop reason %v vs %v", got.StoppedBy, want.StoppedBy)
	}
	if len(got.Curve) != len(want.Curve) {
		t.Fatalf("curve lengths %d vs %d", len(got.Curve), len(want.Curve))
	}
	for i := range got.Curve {
		if got.Curve[i] != want.Curve[i] {
			t.Fatalf("curve[%d]: %+v vs %+v", i, got.Curve[i], want.Curve[i])
		}
	}
	for _, x := range gridPool(41) {
		a, b := got.Model.PredictMeanFast(x), want.Model.PredictMeanFast(x)
		if a != b {
			t.Fatalf("model diverged at %v: %v vs %v", x, a, b)
		}
	}
}

// TestSnapshotResumeMatchesUninterrupted is the determinism contract
// at the learner layer: snapshot mid-run, restore into a freshly
// constructed learner over a fresh engine, and the remaining rounds
// are byte-identical to a run that never stopped. Snapshotting must
// also leave the original learner's own trajectory untouched.
func TestSnapshotResumeMatchesUninterrupted(t *testing.T) {
	opts := smallOpts()
	opts.NMax = 60
	pool := gridPool(300)

	ref := snapLearner(t, opts, pool, 1)
	defer ref.Close()
	want := runToEnd(t, ref)

	for _, snapAt := range []int{1, 7, 20} {
		orig := snapLearner(t, opts, pool, 1)
		for i := 0; i < snapAt; i++ {
			if _, err := orig.Step(); err != nil {
				t.Fatal(err)
			}
		}
		var buf bytes.Buffer
		if err := orig.Snapshot(&buf); err != nil {
			t.Fatalf("snapshot after %d steps: %v", snapAt, err)
		}

		restored := snapLearner(t, opts, pool, 1)
		if err := restored.Restore(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("restore after %d steps: %v", snapAt, err)
		}
		requireSameRun(t, runToEnd(t, restored), want)
		restored.Close()

		// The snapshot is a read: the original continues unperturbed.
		requireSameRun(t, runToEnd(t, orig), want)
		orig.Close()
	}
}

// TestSnapshotParkedRound pins the serving-critical case: a session
// parked by BeginRound (batch chosen, nothing scheduled) snapshots
// mid-round, and the restored learner's FinishRound continues as if
// the process never died.
func TestSnapshotParkedRound(t *testing.T) {
	opts := smallOpts()
	opts.NMax = 50
	pool := gridPool(300)

	ref := snapLearner(t, opts, pool, 1)
	defer ref.Close()
	want := runToEnd(t, ref)

	drive := func(l *Learner, rounds int) bool {
		t.Helper()
		for i := 0; rounds < 0 || i < rounds; i++ {
			chosen, err := l.BeginRound()
			if err != nil {
				t.Fatal(err)
			}
			if chosen == nil {
				return false
			}
			more, err := l.FinishRound()
			if err != nil {
				t.Fatal(err)
			}
			if !more {
				return false
			}
		}
		return true
	}

	orig := snapLearner(t, opts, pool, 1)
	defer orig.Close()
	if !drive(orig, 9) {
		t.Fatal("run ended before the snapshot point")
	}
	// Park a round: select the batch, snapshot before any observation.
	chosen, err := orig.BeginRound()
	if err != nil {
		t.Fatal(err)
	}
	if chosen == nil {
		t.Fatal("no round to park")
	}
	var buf bytes.Buffer
	if err := orig.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	restored := snapLearner(t, opts, pool, 1)
	defer restored.Close()
	if err := restored.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if !restored.RoundPending() {
		t.Fatal("restored learner lost the parked round")
	}
	pend := restored.PendingObservations()
	if len(pend) != len(chosen) {
		t.Fatalf("restored round pends %d items, parked %d", len(pend), len(chosen))
	}
	for j, po := range pend {
		if po.Item != chosen[j] {
			t.Fatalf("restored round item[%d] = %d, parked %d", j, po.Item, chosen[j])
		}
	}
	if _, err := restored.FinishRound(); err != nil {
		t.Fatal(err)
	}
	drive(restored, -1)
	requireSameRun(t, restored.Result(), want)
}

// TestSnapshotRestoreAcrossWorkerCounts pins the satellite contract:
// snapshot under one worker count, restore under another (both the
// scoring workers and the evaluator's measurement workers), and the
// completed run is bit-identical every way.
func TestSnapshotRestoreAcrossWorkerCounts(t *testing.T) {
	opts := smallOpts()
	opts.NMax = 40
	pool := gridPool(300)

	orig := snapLearner(t, opts, pool, 1)
	defer orig.Close()
	for i := 0; i < 8; i++ {
		if _, err := orig.Step(); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := orig.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	var want *Result
	for _, w := range []int{1, 4, 8} {
		wopts := opts
		wopts.Workers = w
		restored := snapLearner(t, wopts, pool, w)
		if err := restored.Restore(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		got := runToEnd(t, restored)
		restored.Close()
		if w == 1 {
			want = got
			continue
		}
		requireSameRun(t, got, want)
	}
}

// TestSnapshotMismatchRejected pins the guard behaviour: a snapshot
// from a differently-configured learner fails loudly with
// ErrSnapshotMismatch, and a learner that has already run refuses to
// restore at all.
func TestSnapshotMismatchRejected(t *testing.T) {
	opts := smallOpts()
	opts.NMax = 30
	pool := gridPool(300)

	orig := snapLearner(t, opts, pool, 1)
	defer orig.Close()
	for i := 0; i < 3; i++ {
		if _, err := orig.Step(); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := orig.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	for name, mutate := range map[string]func(*Options, *SlicePool){
		"seed":      func(o *Options, _ *SlicePool) { o.Seed++ },
		"batch":     func(o *Options, _ *SlicePool) { o.Batch++ },
		"nmax":      func(o *Options, _ *SlicePool) { o.NMax++ },
		"pool size": func(_ *Options, p *SlicePool) { *p = gridPool(299) },
	} {
		mopts, mpool := opts, pool
		mutate(&mopts, &mpool)
		l := snapLearner(t, mopts, mpool, 1)
		err := l.Restore(bytes.NewReader(buf.Bytes()))
		l.Close()
		if !errors.Is(err, ErrSnapshotMismatch) {
			t.Fatalf("%s mutated: err = %v, want ErrSnapshotMismatch", name, err)
		}
	}

	used := snapLearner(t, opts, pool, 1)
	defer used.Close()
	if _, err := used.Step(); err != nil {
		t.Fatal(err)
	}
	if err := used.Restore(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("Restore on a used learner did not error")
	}
}

// TestSnapshotCorruptLearner sweeps byte corruption over a full
// learner snapshot: Restore must fail with a typed error — corruption
// or an unsupported version — and never panic or half-apply. (The
// container CRC catches payload flips; header flips exercise the
// structural paths.)
func TestSnapshotCorruptLearner(t *testing.T) {
	opts := smallOpts()
	opts.NMax = 30
	pool := gridPool(200)
	orig := snapLearner(t, opts, pool, 1)
	defer orig.Close()
	for i := 0; i < 4; i++ {
		if _, err := orig.Step(); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := orig.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	snap := buf.Bytes()

	stride := len(snap)/211 + 1
	for i := 0; i < len(snap); i += stride {
		for _, bit := range []byte{0x01, 0xFF} {
			mut := append([]byte(nil), snap...)
			mut[i] ^= bit
			l := snapLearner(t, opts, pool, 1)
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("panic restoring snapshot mutated at byte %d: %v", i, r)
					}
				}()
				err := l.Restore(bytes.NewReader(mut))
				if err == nil {
					t.Fatalf("byte %d flipped by %#x restored cleanly", i, bit)
				}
				if !errors.Is(err, snapshot.ErrCorruptSnapshot) && !errors.Is(err, snapshot.ErrUnsupportedVersion) {
					t.Fatalf("byte %d: untyped error %v", i, err)
				}
			}()
			l.Close()
		}
	}
	for _, n := range []int{0, 5, 13, len(snap) / 2, len(snap) - 1} {
		l := snapLearner(t, opts, pool, 1)
		if err := l.Restore(bytes.NewReader(snap[:n])); !errors.Is(err, snapshot.ErrCorruptSnapshot) {
			t.Fatalf("truncation to %d: err = %v", n, err)
		}
		l.Close()
	}
}

// TestSnapshotAsyncFoldsInFlight pins the async snapshot rule: a
// pipelined learner folds its in-flight round at snapshot time, and
// the restored learner resumes from that fold point deterministically
// (matching a second restore, not the uninterrupted pipeline).
func TestSnapshotAsyncFoldsInFlight(t *testing.T) {
	opts := smallOpts()
	opts.NMax = 40
	opts.Async = true
	pool := gridPool(300)

	orig := snapLearner(t, opts, pool, 2)
	defer orig.Close()
	for i := 0; i < 10; i++ {
		if _, err := orig.Step(); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := orig.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	var want *Result
	for trial := 0; trial < 2; trial++ {
		restored := snapLearner(t, opts, pool, 2)
		if err := restored.Restore(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatal(err)
		}
		got := runToEnd(t, restored)
		restored.Close()
		if trial == 0 {
			want = got
			continue
		}
		requireSameRun(t, got, want)
	}
}
