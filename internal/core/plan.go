package core

import (
	"errors"

	"alic/internal/registry"
)

// SamplingPlan decides how many observations each configuration
// receives and whether seen configurations stay in the candidate set —
// the axis §4.3 of the paper compares (fixed 35, fixed 1, variable).
// Implementations must be stateless values.
type SamplingPlan interface {
	// Name identifies the plan in the registry and in reports.
	Name() string
	// SeedObservations is the number of observations each of the NInit
	// seed configurations receives. Must be >= 1.
	SeedObservations(o Options) int
	// AcquireObservations is the number of observations an acquired
	// configuration receives. Must be >= 1.
	AcquireObservations(o Options) int
	// Revisitable reports whether a configuration already observed n
	// times stays in the candidate set for another acquisition.
	Revisitable(o Options, n int) bool
}

// Built-in plans. The values double as registry entries and as
// ready-to-use Options.Plan settings.
var (
	// VariablePlan is the paper's contribution: one observation per
	// acquisition with model-driven revisits capped at NObs
	// (Algorithm 1).
	VariablePlan SamplingPlan = variablePlan{}
	// FixedPlan is the classic approach: every selected configuration
	// is profiled Options.PlanObs times and never revisited.
	FixedPlan SamplingPlan = fixedPlan{}
)

type variablePlan struct{}

func (variablePlan) Name() string                      { return "variable" }
func (variablePlan) SeedObservations(o Options) int    { return o.NObs }
func (variablePlan) AcquireObservations(Options) int   { return 1 }
func (variablePlan) Revisitable(o Options, n int) bool { return n < o.NObs }

type fixedPlan struct{}

func (fixedPlan) Name() string                      { return "fixed" }
func (fixedPlan) SeedObservations(o Options) int    { return o.PlanObs }
func (fixedPlan) AcquireObservations(o Options) int { return o.PlanObs }
func (fixedPlan) Revisitable(Options, int) bool     { return false }

// ErrUnknownPlan reports a sampling-plan name with no registration.
var ErrUnknownPlan = errors.New("unknown sampling plan")

var planReg = registry.New[SamplingPlan]("core", ErrUnknownPlan)

// RegisterPlan makes a sampling plan selectable by name, replacing any
// existing registration under the same name. It panics on a nil value
// or empty name.
func RegisterPlan(p SamplingPlan) {
	if p == nil {
		panic("core: RegisterPlan with nil value")
	}
	planReg.Register(p.Name(), p)
}

// PlanByName returns the registered plan, or an error wrapping
// ErrUnknownPlan.
func PlanByName(name string) (SamplingPlan, error) { return planReg.Lookup(name) }

// PlanNames lists the registered plans in sorted order.
func PlanNames() []string { return planReg.Names() }

func init() {
	RegisterPlan(VariablePlan)
	RegisterPlan(FixedPlan)
}
