package core

import (
	"errors"
	"fmt"
	"io"

	"alic/internal/model"
	"alic/internal/snapshot"
)

// ErrSnapshotMismatch reports a snapshot that decoded cleanly but was
// taken from a learner with different structural parameters (pool
// size, budgets, plan/scorer/backend names, seed) than the one
// restoring it. Deliberately distinct from snapshot.ErrCorruptSnapshot:
// the bytes are fine, the learners disagree.
var ErrSnapshotMismatch = errors.New("core: snapshot from a differently-configured learner")

// learnerFormat versions the learner section payload.
const learnerFormat = 1

// ledgerCodec is the evaluator-engine extension snapshots require:
// the §4.3 cost ledger must survive the process for the determinism
// contract (and the accounting) to hold.
type ledgerCodec interface {
	SnapshotLedger() ([]byte, error)
	RestoreLedger(payload []byte) error
}

// Section names inside the learner container. Readers skip names they
// do not recognise (the forward-compat rule), so additions are free;
// renames and semantic changes bump learnerFormat instead.
const (
	secLearner = "core.learner"
	secRNG     = "core.rng"
	secRound   = "core.round"
	secLedger  = "core.ledger"
	secModel   = "core.model"
	secSpace   = "core.space"
)

// Snapshot serializes the learner's complete resumable state to w as
// a versioned container: loop counters and bookkeeping, the rng
// stream position, any round parked by BeginRound (so a split-phase
// scheduler's sessions snapshot exactly, mid-round), the evaluator's
// cost ledger, and the backend model. The contract is the acceptance
// bar of the determinism pin: restore into a freshly constructed
// learner (same options, pool and evaluator wiring) in any process,
// at any worker count, and the remaining rounds are byte-identical to
// never having stopped.
//
// The learner must be between rounds or parked on a BeginRound; an
// asynchronous learner with a round still measuring folds it first
// (the resumed trajectory then matches a sync-folded continuation,
// not the uninterrupted pipeline — async snapshots are documented as
// a fold point). The evaluator must support the ledger codec
// (evaluator.Engine does); the backend must implement
// model.Snapshotter once seeded.
func (l *Learner) Snapshot(w io.Writer) error {
	if l.closed.Load() {
		return ErrClosed
	}
	l.mu.Lock()
	defer l.mu.Unlock()

	lc, ok := l.ev.(ledgerCodec)
	if !ok {
		return fmt.Errorf("core: evaluator %T does not support ledger snapshots", l.ev)
	}
	if l.pending != nil {
		// Fold the in-flight async round so the ledger is quiescent and
		// the model state is well-defined.
		if err := l.collectRound(); err != nil {
			return l.closedErr(err)
		}
	}
	var ms model.Snapshotter
	if l.model != nil {
		if ms, ok = l.model.(model.Snapshotter); !ok {
			return fmt.Errorf("core: model backend %q does not support snapshots", l.builder.Name())
		}
	}
	ledger, err := lc.SnapshotLedger()
	if err != nil {
		return err
	}

	sw := snapshot.NewWriter(w)

	e := snapshot.NewEncoder(512 + 16*len(l.order) + 24*len(l.curve))
	e.Int(learnerFormat)
	// Structural guards: the restoring learner must agree on all of
	// them, or the remaining trajectory would silently diverge.
	e.Int(l.pool.Len())
	e.Int(len(l.pool.Features(0)))
	e.Int(l.opts.NInit)
	e.Int(l.opts.NObs)
	e.Int(l.opts.NCand)
	e.Int(l.opts.NMax)
	e.Int(l.opts.Batch)
	e.Int(l.opts.PlanObs)
	e.Int(l.opts.EvalEvery)
	e.U64(l.opts.Seed)
	e.Bool(l.opts.Async)
	e.String(l.plan.Name())
	e.String(l.acq.Name())
	e.String(l.builder.Name())
	// Loop position and bookkeeping.
	e.Int(l.acquired)
	e.Int(l.observations)
	e.Int(l.revisits)
	e.Int(l.scheduled)
	e.F64(l.lastRoundCost)
	e.Int(l.lastSeq)
	e.Int(int(l.stoppedBy))
	// Seen items in first-seen order with their observation counts —
	// the aligned pair avoids map iteration entirely.
	e.Ints(l.order)
	for _, idx := range l.order {
		e.Int(l.obsCount[idx])
	}
	// Prequential stopping estimator.
	e.Int(l.preq.window)
	e.F64s(l.preq.resid2)
	e.Int(l.preq.nextIdx)
	e.Bool(l.preq.filled)
	// Learning curve.
	e.Int(len(l.curve))
	for _, cp := range l.curve {
		e.Int(cp.Acquired)
		e.F64(cp.Cost)
		e.F64(cp.Error)
	}
	if err := sw.Section(secLearner, e.Bytes()); err != nil {
		return err
	}

	re := snapshot.NewEncoder(48)
	for _, word := range l.r.State() {
		re.U64(word)
	}
	if err := sw.Section(secRNG, re.Bytes()); err != nil {
		return err
	}

	if l.begun != nil {
		be := snapshot.NewEncoder(32 + 8*len(l.begun.chosen))
		be.Ints(l.begun.chosen)
		be.Int(l.begun.n)
		be.Bool(l.begun.seeding)
		if err := sw.Section(secRound, be.Bytes()); err != nil {
			return err
		}
	}

	if err := sw.Section(secLedger, ledger); err != nil {
		return err
	}

	// The space name travels in its own section so pre-registry readers
	// (which skip unknown names) stay compatible; it is only written
	// when the learner is space-guarded at all.
	if l.opts.Space != "" {
		se := snapshot.NewEncoder(16 + len(l.opts.Space))
		se.String(l.opts.Space)
		if err := sw.Section(secSpace, se.Bytes()); err != nil {
			return err
		}
	}

	if ms != nil {
		me := snapshot.NewEncoder(64)
		me.String(l.builder.Name())
		if err := sw.Section(secModel, append(me.Bytes(), ms.Snapshot()...)); err != nil {
			return err
		}
	}
	return nil
}

// Restore loads a Snapshot into this learner, which must be freshly
// constructed (nothing seeded, nothing acquired) over the same pool
// shape and option guards the snapshot records — mismatches fail with
// ErrSnapshotMismatch rather than diverging silently. Worker counts
// (Options.Workers, the evaluator's workers) are deliberately NOT
// guarded: restoring onto different parallelism is supported and
// bit-identical. After Restore the learner continues exactly where
// the snapshot was taken, including a round parked by BeginRound.
func (l *Learner) Restore(r io.Reader) error {
	if l.closed.Load() {
		return ErrClosed
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.model != nil || l.acquired != 0 || l.begun != nil || len(l.order) != 0 {
		return fmt.Errorf("core: Restore on a learner that has already run")
	}
	lc, ok := l.ev.(ledgerCodec)
	if !ok {
		return fmt.Errorf("core: evaluator %T does not support ledger snapshots", l.ev)
	}

	c, err := snapshot.Read(r)
	if err != nil {
		return err
	}
	pay, ok := c.Section(secLearner)
	if !ok {
		return snapshot.Corruptf(secLearner, "section missing")
	}
	d := snapshot.NewDecoder(secLearner, pay)
	if v := d.Int(); d.Err() == nil && v != learnerFormat {
		return snapshot.Corruptf(secLearner, "learner format %d, this build reads %d", v, learnerFormat)
	}

	type guard struct {
		name string
		got  string
		want string
	}
	var bad []guard
	intGuard := func(name string, want int) {
		if got := d.Int(); d.Err() == nil && got != want {
			bad = append(bad, guard{name, fmt.Sprint(got), fmt.Sprint(want)})
		}
	}
	strGuard := func(name, want string) {
		if got := d.String(); d.Err() == nil && got != want {
			bad = append(bad, guard{name, got, want})
		}
	}
	intGuard("pool size", l.pool.Len())
	intGuard("feature dim", len(l.pool.Features(0)))
	intGuard("NInit", l.opts.NInit)
	intGuard("NObs", l.opts.NObs)
	intGuard("NCand", l.opts.NCand)
	intGuard("NMax", l.opts.NMax)
	intGuard("Batch", l.opts.Batch)
	intGuard("PlanObs", l.opts.PlanObs)
	intGuard("EvalEvery", l.opts.EvalEvery)
	if got := d.U64(); d.Err() == nil && got != l.opts.Seed {
		bad = append(bad, guard{"Seed", fmt.Sprint(got), fmt.Sprint(l.opts.Seed)})
	}
	if got := d.Bool(); d.Err() == nil && got != l.opts.Async {
		bad = append(bad, guard{"Async", fmt.Sprint(got), fmt.Sprint(l.opts.Async)})
	}
	strGuard("plan", l.plan.Name())
	strGuard("scorer", l.acq.Name())
	strGuard("model backend", l.builder.Name())
	if err := d.Err(); err != nil {
		return err
	}
	if len(bad) > 0 {
		msg := ""
		for i, g := range bad {
			if i > 0 {
				msg += "; "
			}
			msg += fmt.Sprintf("%s: snapshot %s, learner %s", g.name, g.got, g.want)
		}
		return fmt.Errorf("%w: %s", ErrSnapshotMismatch, msg)
	}

	acquired := d.Int()
	observations := d.Int()
	revisits := d.Int()
	scheduled := d.Int()
	lastRoundCost := d.F64()
	lastSeq := d.Int()
	stoppedBy := StopReason(d.Int())
	order := d.Ints()
	counts := make([]int, len(order))
	for i := range counts {
		counts[i] = d.Int()
	}
	preqWindow := d.Int()
	resid2 := d.F64s()
	preqNext := d.Int()
	preqFilled := d.Bool()
	nCurve := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if acquired < 0 || observations < 0 || revisits < 0 || lastSeq < -1 {
		return snapshot.Corruptf(secLearner, "negative counters")
	}
	if stoppedBy < StopNone || stoppedBy > StopCancelled {
		return snapshot.Corruptf(secLearner, "stop reason %d", int(stoppedBy))
	}
	if preqWindow < 1 || len(resid2) > preqWindow || preqNext < 0 || preqNext >= preqWindow+1 {
		return snapshot.Corruptf(secLearner, "prequential window %d with %d residuals, next %d", preqWindow, len(resid2), preqNext)
	}
	if nCurve < 0 || nCurve > d.Remaining()/24 {
		return snapshot.Corruptf(secLearner, "curve length %d with %d bytes left", nCurve, d.Remaining())
	}
	curve := make([]CurvePoint, 0, nCurve)
	for i := 0; i < nCurve; i++ {
		curve = append(curve, CurvePoint{Acquired: d.Int(), Cost: d.F64(), Error: d.F64()})
	}
	if err := d.Err(); err != nil {
		return err
	}
	seenCheck := make(map[int]bool, len(order))
	for i, idx := range order {
		if idx < 0 || idx >= l.pool.Len() {
			return snapshot.Corruptf(secLearner, "seen item %d outside pool of %d", idx, l.pool.Len())
		}
		if seenCheck[idx] {
			return snapshot.Corruptf(secLearner, "seen item %d twice", idx)
		}
		seenCheck[idx] = true
		if counts[i] < 1 {
			return snapshot.Corruptf(secLearner, "item %d with %d observations", idx, counts[i])
		}
	}

	pay, ok = c.Section(secRNG)
	if !ok {
		return snapshot.Corruptf(secRNG, "section missing")
	}
	rd := snapshot.NewDecoder(secRNG, pay)
	var st [6]uint64
	for i := range st {
		st[i] = rd.U64()
	}
	if err := rd.Err(); err != nil {
		return err
	}

	var begun *round
	if pay, ok = c.Section(secRound); ok {
		bd := snapshot.NewDecoder(secRound, pay)
		begun = &round{chosen: bd.Ints(), n: bd.Int(), seeding: bd.Bool()}
		if err := bd.Err(); err != nil {
			return err
		}
		if len(begun.chosen) == 0 || begun.n < 1 {
			return snapshot.Corruptf(secRound, "round of %d items, %d observations each", len(begun.chosen), begun.n)
		}
		for _, idx := range begun.chosen {
			if idx < 0 || idx >= l.pool.Len() {
				return snapshot.Corruptf(secRound, "chosen item %d outside pool of %d", idx, l.pool.Len())
			}
		}
	}

	ledger, ok := c.Section(secLedger)
	if !ok {
		return snapshot.Corruptf(secLedger, "section missing")
	}

	// Space guard: when both sides name a space they must agree —
	// restoring an "mm" snapshot into a "synthetic/needle" learner is a
	// configuration error, never a panic. A snapshot without the
	// section (pre-registry) or a learner without Options.Space
	// (legacy construction) skips the check.
	if pay, ok = c.Section(secSpace); ok {
		sd := snapshot.NewDecoder(secSpace, pay)
		snapSpace := sd.String()
		if err := sd.Err(); err != nil {
			return err
		}
		if snapSpace == "" {
			return snapshot.Corruptf(secSpace, "empty space name")
		}
		if l.opts.Space != "" && snapSpace != l.opts.Space {
			return fmt.Errorf("%w: snapshot space %q, learner space %q",
				ErrSnapshotMismatch, snapSpace, l.opts.Space)
		}
	}

	// Rebuild the model before committing any learner state, so a bad
	// model payload leaves the learner untouched and retryable.
	var mdl model.Model
	var mpay []byte
	if pay, ok = c.Section(secModel); ok {
		md := snapshot.NewDecoder(secModel, pay)
		name := md.String()
		if err := md.Err(); err != nil {
			return err
		}
		if name != l.builder.Name() {
			return fmt.Errorf("%w: model section %q, learner backend %q", ErrSnapshotMismatch, name, l.builder.Name())
		}
		mr, ok := l.builder.(model.Restorer)
		if !ok {
			return fmt.Errorf("core: model backend %q cannot restore snapshots", l.builder.Name())
		}
		mpay = pay[len(pay)-md.Remaining():]
		var err error
		mdl, err = mr.Restore(model.Params{
			Dim:     len(l.pool.Features(0)),
			Workers: l.opts.Workers,
			RNG:     l.r.Split(l.builder.Name()),
		}, mpay)
		if err != nil {
			return err
		}
		if model.IsNil(mdl) {
			return fmt.Errorf("core: model backend %q restored a nil model", l.builder.Name())
		}
	} else if begun == nil || !begun.seeding {
		if acquired > 0 {
			return snapshot.Corruptf(secModel, "section missing with %d acquisitions", acquired)
		}
	}

	if err := lc.RestoreLedger(ledger); err != nil {
		return err
	}

	// Commit. From here on every assignment is infallible.
	l.r.SetState(st)
	l.acquired = acquired
	l.observations = observations
	l.revisits = revisits
	l.scheduled = scheduled
	l.lastRoundCost = lastRoundCost
	l.lastSeq = lastSeq
	l.stoppedBy = stoppedBy
	l.order = order
	l.obsCount = make(map[int]int, len(order))
	for i, idx := range order {
		l.obsCount[idx] = counts[i]
	}
	l.preq = &prequential{window: preqWindow, resid2: resid2, nextIdx: preqNext, filled: preqFilled}
	if l.preq.resid2 == nil {
		l.preq.resid2 = make([]float64, 0, preqWindow)
	}
	if preqNext >= preqWindow {
		l.preq.nextIdx = 0
	}
	l.curve = curve
	l.begun = begun
	if mdl != nil {
		l.model = mdl
		// Re-wire the optional fast paths exactly as seedObserve does:
		// re-binding the pool rebuilds the backend's routing cache from
		// scratch (pure memoization, bit-neutral).
		if pb, ok := mdl.(model.PoolBinder); ok {
			rows := make([][]float64, l.pool.Len())
			for i := range rows {
				rows[i] = l.pool.Features(i)
			}
			pb.BindPool(rows)
			l.binder = pb
		}
		if ru, ok := mdl.(model.RoundUpdater); ok {
			l.roundUpd = ru
		}
	}
	return nil
}
