package snapshot

import (
	"encoding/binary"
	"math"
)

// Encoder builds a section payload from fixed-width little-endian
// primitives. Floats travel as their IEEE-754 bit patterns, which is
// what the bit-determinism contract requires: a restored float is the
// same 64 bits that were saved, including negative zero and NaN
// payloads.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an Encoder with room for sizeHint bytes.
func NewEncoder(sizeHint int) *Encoder {
	if sizeHint < 0 {
		sizeHint = 0
	}
	return &Encoder{buf: make([]byte, 0, sizeHint)}
}

// Bytes returns the accumulated payload.
func (e *Encoder) Bytes() []byte { return e.buf }

func (e *Encoder) U64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// Int encodes a Go int as 64 bits regardless of platform word size.
func (e *Encoder) Int(v int) { e.U64(uint64(int64(v))) }

func (e *Encoder) U32(v uint32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
}

func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

func (e *Encoder) Bool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// String writes a length-prefixed string.
func (e *Encoder) String(s string) {
	e.Int(len(s))
	e.buf = append(e.buf, s...)
}

// Ints writes a length-prefixed []int.
func (e *Encoder) Ints(v []int) {
	e.Int(len(v))
	for _, x := range v {
		e.Int(x)
	}
}

// Int32s writes a length-prefixed []int32.
func (e *Encoder) Int32s(v []int32) {
	e.Int(len(v))
	for _, x := range v {
		e.U32(uint32(x))
	}
}

// F64s writes a length-prefixed []float64.
func (e *Encoder) F64s(v []float64) {
	e.Int(len(v))
	for _, x := range v {
		e.F64(x)
	}
}

// Decoder reads back what an Encoder wrote. It never panics on
// malformed input: the first violation (short buffer, negative or
// overrunning length) latches an error, every subsequent read returns
// a zero value, and the caller checks Err once at the end. Length
// prefixes are validated against the bytes actually remaining before
// any allocation, so a flipped length byte cannot force a huge
// allocation.
type Decoder struct {
	buf     []byte
	section string
	err     error
}

// NewDecoder decodes payload; section names the enclosing section for
// error messages.
func NewDecoder(section string, payload []byte) *Decoder {
	return &Decoder{buf: payload, section: section}
}

// Err reports the first decoding violation, wrapped so that
// errors.Is(err, ErrCorruptSnapshot) holds.
func (d *Decoder) Err() error { return d.err }

// Remaining reports how many bytes are left undecoded.
func (d *Decoder) Remaining() int { return len(d.buf) }

func (d *Decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = corruptf(d.section, format, args...)
	}
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > len(d.buf) {
		d.fail("need %d bytes, %d remain", n, len(d.buf))
		return nil
	}
	b := d.buf[:n]
	d.buf = d.buf[n:]
	return b
}

func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *Decoder) I64() int64 { return int64(d.U64()) }

func (d *Decoder) Int() int { return int(d.I64()) }

func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

func (d *Decoder) Bool() bool {
	b := d.take(1)
	if b == nil {
		return false
	}
	switch b[0] {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("bool byte %d", b[0])
		return false
	}
}

func (d *Decoder) String() string {
	n := d.Int()
	if d.err != nil {
		return ""
	}
	if n < 0 || n > len(d.buf) {
		d.fail("string length %d, %d bytes remain", n, len(d.buf))
		return ""
	}
	return string(d.take(n))
}

// sliceLen validates a length prefix for elements of elemSize bytes.
func (d *Decoder) sliceLen(elemSize int) int {
	n := d.Int()
	if d.err != nil {
		return 0
	}
	if n < 0 || n > len(d.buf)/elemSize {
		d.fail("slice length %d, %d bytes remain", n, len(d.buf))
		return 0
	}
	return n
}

func (d *Decoder) Ints() []int {
	n := d.sliceLen(8)
	if d.err != nil || n == 0 {
		return nil
	}
	v := make([]int, n)
	for i := range v {
		v[i] = d.Int()
	}
	return v
}

func (d *Decoder) Int32s() []int32 {
	n := d.sliceLen(4)
	if d.err != nil || n == 0 {
		return nil
	}
	v := make([]int32, n)
	for i := range v {
		v[i] = int32(d.U32())
	}
	return v
}

func (d *Decoder) F64s() []float64 {
	n := d.sliceLen(8)
	if d.err != nil || n == 0 {
		return nil
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = d.F64()
	}
	return v
}
