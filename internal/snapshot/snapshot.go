// Package snapshot defines the self-describing binary container every
// persistent alic state dump uses: a magic header with a format
// version, followed by named sections that each carry their own length
// and CRC-32 checksum.
//
// The container deliberately knows nothing about what the sections
// mean. Producers (dynatree, core, serve, ...) serialize their state
// into a payload with an Encoder and register it under a name;
// consumers look sections up by name and decode with a Decoder.
// Sections a reader does not recognise are skipped, which is the
// forward-compatibility rule: a newer writer may add sections freely
// as long as the container version and the sections an old reader
// depends on keep their meaning.
//
// Corruption is always loud. A bad magic, an unsupported version, a
// short read, a length that overruns the buffer, or a checksum
// mismatch all surface as an error wrapping ErrCorruptSnapshot (with
// the section name when one is known) — never a panic and never a
// silent partial restore.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Magic identifies an alic snapshot container. The trailing byte is
// the container-format generation, separate from Version so that a
// byte-level incompatible rework is detected before any parsing.
var magic = [8]byte{'a', 'l', 'i', 'c', 's', 'n', 'p', '1'}

// Version is the current container version. Readers accept exactly
// the versions they understand; unknown sections inside an accepted
// version are skipped.
const Version uint32 = 1

// ErrCorruptSnapshot is the sentinel wrapped by every decoding
// failure: checksum mismatches, truncated payloads, impossible
// lengths, bad magic. Callers test with errors.Is.
var ErrCorruptSnapshot = errors.New("corrupt snapshot")

// ErrUnsupportedVersion is returned when the container parses but its
// version is newer than this build understands. It deliberately does
// not wrap ErrCorruptSnapshot: the data may be fine, the reader is
// just too old.
var ErrUnsupportedVersion = errors.New("unsupported snapshot version")

// CorruptError reports where a snapshot failed to decode. Section is
// empty when the container header itself is damaged.
type CorruptError struct {
	Section string
	Reason  string
}

func (e *CorruptError) Error() string {
	if e.Section == "" {
		return "corrupt snapshot: " + e.Reason
	}
	return fmt.Sprintf("corrupt snapshot: section %q: %s", e.Section, e.Reason)
}

func (e *CorruptError) Unwrap() error { return ErrCorruptSnapshot }

func corruptf(section, format string, args ...any) error {
	return &CorruptError{Section: section, Reason: fmt.Sprintf(format, args...)}
}

// Corruptf builds a CorruptError for the named section — for
// producers whose payload decoded structurally but violates a
// semantic invariant (id out of range, mismatched counts).
func Corruptf(section, format string, args ...any) error {
	return corruptf(section, format, args...)
}

// maxSectionName bounds section names so a corrupted length cannot
// drive a huge allocation before the checksum is even consulted.
const maxSectionName = 1 << 10

// Writer assembles a container. Sections are written in the order
// they are added; the order is part of the byte format but not part
// of the semantic contract (readers look up by name).
type Writer struct {
	w   io.Writer
	err error
}

// NewWriter writes the container header to w and returns a Writer for
// appending sections.
func NewWriter(w io.Writer) *Writer {
	sw := &Writer{w: w}
	var hdr [12]byte
	copy(hdr[:8], magic[:])
	binary.LittleEndian.PutUint32(hdr[8:], Version)
	_, sw.err = w.Write(hdr[:])
	return sw
}

// Section appends one named section: name length, name bytes, payload
// length, payload CRC-32 (IEEE), payload bytes.
func (sw *Writer) Section(name string, payload []byte) error {
	if sw.err != nil {
		return sw.err
	}
	if len(name) == 0 || len(name) > maxSectionName {
		sw.err = fmt.Errorf("snapshot: section name length %d out of range", len(name))
		return sw.err
	}
	var hdr [2 + 8 + 4]byte
	binary.LittleEndian.PutUint16(hdr[0:], uint16(len(name)))
	binary.LittleEndian.PutUint64(hdr[2:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(hdr[10:], crc32.ChecksumIEEE(payload))
	if _, sw.err = sw.w.Write(hdr[:]); sw.err != nil {
		return sw.err
	}
	if _, sw.err = io.WriteString(sw.w, name); sw.err != nil {
		return sw.err
	}
	_, sw.err = sw.w.Write(payload)
	return sw.err
}

// Err reports the first write error, if any.
func (sw *Writer) Err() error { return sw.err }

// Container is a fully read and checksum-verified snapshot.
type Container struct {
	sections []section
}

type section struct {
	name    string
	payload []byte
}

// Read consumes an entire container from r, verifying the header and
// every section checksum. Allocation for each section is capped by
// the number of bytes actually available, so a corrupted length field
// fails fast instead of attempting a huge allocation.
func Read(r io.Reader) (*Container, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, corruptf("", "reading container: %v", err)
	}
	return Parse(data)
}

// Parse decodes a container from an in-memory buffer. The returned
// Container aliases data; callers must not mutate it afterwards.
func Parse(data []byte) (*Container, error) {
	if len(data) < 12 {
		return nil, corruptf("", "short container: %d bytes", len(data))
	}
	for i, b := range magic {
		if data[i] != b {
			return nil, corruptf("", "bad magic %q", data[:8])
		}
	}
	ver := binary.LittleEndian.Uint32(data[8:])
	if ver != Version {
		return nil, fmt.Errorf("%w: container version %d, this build reads %d", ErrUnsupportedVersion, ver, Version)
	}
	c := &Container{}
	rest := data[12:]
	for len(rest) > 0 {
		if len(rest) < 2+8+4 {
			return nil, corruptf("", "truncated section header: %d trailing bytes", len(rest))
		}
		nameLen := int(binary.LittleEndian.Uint16(rest[0:]))
		payLen64 := binary.LittleEndian.Uint64(rest[2:])
		sum := binary.LittleEndian.Uint32(rest[10:])
		rest = rest[14:]
		if nameLen == 0 || nameLen > maxSectionName || nameLen > len(rest) {
			return nil, corruptf("", "section name length %d overruns buffer (%d bytes left)", nameLen, len(rest))
		}
		name := string(rest[:nameLen])
		rest = rest[nameLen:]
		if payLen64 > uint64(len(rest)) {
			return nil, corruptf(name, "payload length %d overruns buffer (%d bytes left)", payLen64, len(rest))
		}
		payload := rest[:payLen64]
		rest = rest[payLen64:]
		if got := crc32.ChecksumIEEE(payload); got != sum {
			return nil, corruptf(name, "checksum mismatch: stored %08x, computed %08x", sum, got)
		}
		c.sections = append(c.sections, section{name: name, payload: payload})
	}
	return c, nil
}

// Section returns the payload of the named section. Duplicate names
// resolve to the first occurrence. Absent sections return ok=false:
// whether that is an error is the caller's call (forward-compat skip
// rule works both directions).
func (c *Container) Section(name string) ([]byte, bool) {
	for _, s := range c.sections {
		if s.name == name {
			return s.payload, true
		}
	}
	return nil, false
}

// Names lists the section names in container order, mostly for tests
// and diagnostics.
func (c *Container) Names() []string {
	out := make([]string, len(c.sections))
	for i, s := range c.sections {
		out[i] = s.name
	}
	return out
}
