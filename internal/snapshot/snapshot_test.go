package snapshot

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
)

func buildContainer(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	e := NewEncoder(64)
	e.Int(42)
	e.F64(math.Pi)
	e.String("hello")
	e.Ints([]int{1, -2, 3})
	e.Bool(true)
	if err := w.Section("alpha", e.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := w.Section("beta", []byte{9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	if err := w.Section("empty", nil); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	data := buildContainer(t)
	c, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Names(); len(got) != 3 || got[0] != "alpha" || got[1] != "beta" || got[2] != "empty" {
		t.Fatalf("names = %v", got)
	}
	pay, ok := c.Section("alpha")
	if !ok {
		t.Fatal("alpha section missing")
	}
	d := NewDecoder("alpha", pay)
	if got := d.Int(); got != 42 {
		t.Errorf("Int = %d", got)
	}
	if got := d.F64(); got != math.Pi {
		t.Errorf("F64 = %v", got)
	}
	if got := d.String(); got != "hello" {
		t.Errorf("String = %q", got)
	}
	if got := d.Ints(); len(got) != 3 || got[1] != -2 {
		t.Errorf("Ints = %v", got)
	}
	if !d.Bool() {
		t.Error("Bool = false")
	}
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	if d.Remaining() != 0 {
		t.Errorf("remaining %d bytes", d.Remaining())
	}
	if _, ok := c.Section("gamma"); ok {
		t.Error("unexpected gamma section")
	}
}

// TestUnknownSectionSkipped pins the forward-compat rule: a reader
// that only knows some of the sections can still pull the ones it
// wants out of a container with extras.
func TestUnknownSectionSkipped(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Section("known", []byte("k"))
	w.Section("from-the-future", []byte("mystery bytes"))
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	c, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if pay, ok := c.Section("known"); !ok || string(pay) != "k" {
		t.Fatalf("known section = %q, %v", pay, ok)
	}
}

func TestUnsupportedVersion(t *testing.T) {
	data := buildContainer(t)
	data[8] = 0xFF // bump the version field
	_, err := Parse(data)
	if !errors.Is(err, ErrUnsupportedVersion) {
		t.Fatalf("err = %v, want ErrUnsupportedVersion", err)
	}
	if errors.Is(err, ErrCorruptSnapshot) {
		t.Fatal("version mismatch must not read as corruption")
	}
}

func TestCorruptionDetected(t *testing.T) {
	data := buildContainer(t)

	t.Run("bad magic", func(t *testing.T) {
		mut := append([]byte(nil), data...)
		mut[0] ^= 0xFF
		_, err := Parse(mut)
		if !errors.Is(err, ErrCorruptSnapshot) {
			t.Fatalf("err = %v", err)
		}
	})

	t.Run("payload flip carries section name", func(t *testing.T) {
		mut := append([]byte(nil), data...)
		// Flip a byte inside the alpha payload (header is 12, section
		// header 14, name 5, payload starts at 31).
		mut[35] ^= 0x01
		_, err := Parse(mut)
		if !errors.Is(err, ErrCorruptSnapshot) {
			t.Fatalf("err = %v", err)
		}
		var ce *CorruptError
		if !errors.As(err, &ce) || ce.Section != "alpha" {
			t.Fatalf("err = %v, want CorruptError for alpha", err)
		}
		if !strings.Contains(err.Error(), "alpha") {
			t.Fatalf("message %q does not name the section", err)
		}
	})

	t.Run("truncated", func(t *testing.T) {
		_, err := Parse(data[:len(data)-2])
		if !errors.Is(err, ErrCorruptSnapshot) {
			t.Fatalf("err = %v", err)
		}
	})
}

// TestMutationNeverPanics is the satellite fuzz test: flip or truncate
// bytes at every position and assert the parser either succeeds or
// returns a typed error — never panics, never silently half-parses.
// Deterministic exhaustive sweep rather than random sampling: the
// container is small enough to try every single-byte mutation.
func TestMutationNeverPanics(t *testing.T) {
	data := buildContainer(t)

	check := func(t *testing.T, mut []byte) {
		t.Helper()
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on mutated input: %v", r)
			}
		}()
		c, err := Parse(mut)
		if err != nil {
			if !errors.Is(err, ErrCorruptSnapshot) && !errors.Is(err, ErrUnsupportedVersion) {
				t.Fatalf("untyped error: %v", err)
			}
			return
		}
		// Parsed fine (mutation hit a spot CRC32 cannot distinguish or
		// the mutation was in skipped padding): decoding any section
		// must still be panic-free.
		for _, name := range c.Names() {
			pay, _ := c.Section(name)
			d := NewDecoder(name, pay)
			d.Int()
			d.F64()
			_ = d.String()
			d.Ints()
			d.Bool()
			_ = d.Err()
		}
	}

	for i := range data {
		for _, bit := range []byte{0x01, 0x80, 0xFF} {
			mut := append([]byte(nil), data...)
			mut[i] ^= bit
			check(t, mut)
		}
	}
	for n := 0; n <= len(data); n++ {
		check(t, append([]byte(nil), data[:n]...))
	}
}

// TestDecoderHugeLength pins the allocation cap: a length prefix far
// beyond the remaining bytes errors out instead of allocating.
func TestDecoderHugeLength(t *testing.T) {
	e := NewEncoder(16)
	e.Int(1 << 40) // claims a petabyte-scale slice
	d := NewDecoder("sec", e.Bytes())
	if v := d.Ints(); v != nil {
		t.Fatalf("Ints = %v, want nil", v)
	}
	if !errors.Is(d.Err(), ErrCorruptSnapshot) {
		t.Fatalf("err = %v", d.Err())
	}
	var ce *CorruptError
	if !errors.As(d.Err(), &ce) || ce.Section != "sec" {
		t.Fatalf("err = %v, want CorruptError for sec", d.Err())
	}
}

func TestFloatBitPatterns(t *testing.T) {
	e := NewEncoder(32)
	negZero := math.Copysign(0, -1)
	nan := math.Float64frombits(0x7FF8_0000_DEAD_BEEF)
	e.F64(negZero)
	e.F64(nan)
	d := NewDecoder("f", e.Bytes())
	if got := d.F64(); math.Float64bits(got) != math.Float64bits(negZero) {
		t.Errorf("negative zero bits lost: %x", math.Float64bits(got))
	}
	if got := d.F64(); math.Float64bits(got) != math.Float64bits(nan) {
		t.Errorf("NaN payload lost: %x", math.Float64bits(got))
	}
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
}
