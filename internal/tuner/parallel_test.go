package tuner

import (
	"math"
	"reflect"
	"testing"

	"alic/internal/measure"
	"alic/internal/space"
	_ "alic/internal/space/spaptspace"
	"alic/internal/stats"
)

// TestParallelVerificationMatchesSerial pins the evaluator-pool
// rework: verification at any worker count must select the same
// winner as serial verification, with bit-identical measured runtimes
// and verification cost (every observation addresses its own
// deterministic noise draw, and the engine folds the cost ledger in
// scheduling order).
func TestParallelVerificationMatchesSerial(t *testing.T) {
	run := func(workers int) *Result {
		k, err := space.ByName("gemver")
		if err != nil {
			t.Fatal(err)
		}
		sess, err := measure.NewSession(k, 31)
		if err != nil {
			t.Fatal(err)
		}
		norm := &stats.Normalizer{Means: make([]float64, k.Dim()), Stddevs: onesVec(k.Dim())}
		model := trainModel(t, sess, norm, 120)
		res, err := Search(model, sess, norm, Options{
			Candidates: 600, Verify: 12, VerifyObs: 3, Seed: 11, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	serial := run(1)
	for _, workers := range []int{4, 8} {
		par := run(workers)
		if !reflect.DeepEqual(par.Best.Config, serial.Best.Config) {
			t.Fatalf("workers=%d selected winner %v, serial selected %v",
				workers, par.Best.Config, serial.Best.Config)
		}
		if par.Best.Measured != serial.Best.Measured {
			t.Fatalf("workers=%d measured winner at %v, serial at %v (not bit-identical)",
				workers, par.Best.Measured, serial.Best.Measured)
		}
		if len(par.Top) != len(serial.Top) {
			t.Fatalf("workers=%d verified %d, serial %d", workers, len(par.Top), len(serial.Top))
		}
		for i := range par.Top {
			if par.Top[i].Measured != serial.Top[i].Measured {
				t.Fatalf("workers=%d: top[%d] measured %v, serial %v",
					workers, i, par.Top[i].Measured, serial.Top[i].Measured)
			}
		}
		if par.VerifyCost != serial.VerifyCost {
			t.Fatalf("workers=%d verification cost %v, serial %v (ledger not order-free)",
				workers, par.VerifyCost, serial.VerifyCost)
		}
		if par.Baseline != serial.Baseline {
			t.Fatalf("workers=%d baseline %v, serial %v", workers, par.Baseline, serial.Baseline)
		}
	}
}

// TestBaselineInTopSetReusesVerifiedMean covers the corner where the
// model ranks the -O2 baseline itself into the verified top set: its
// verified mean then doubles as the baseline measurement and the
// speedup of a baseline winner is exactly 1.
func TestBaselineInTopSetReusesVerifiedMean(t *testing.T) {
	k, err := space.ByName("mvt")
	if err != nil {
		t.Fatal(err)
	}
	sess, err := measure.NewSession(k, 33)
	if err != nil {
		t.Fatal(err)
	}
	norm := &stats.Normalizer{Means: make([]float64, k.Dim()), Stddevs: onesVec(k.Dim())}
	model := trainModel(t, sess, norm, 60)
	// Verify == Candidates forces every sampled candidate (possibly
	// including the baseline) into the verified set; the test mainly
	// asserts the search stays consistent rather than a specific draw.
	res, err := Search(model, sess, norm, Options{
		Candidates: 40, Verify: 40, VerifyObs: 2, Seed: 13, Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.Baseline) || res.Baseline <= 0 {
		t.Fatalf("baseline not measured: %v", res.Baseline)
	}
	for i := range res.Top {
		if reflect.DeepEqual(res.Top[i].Config, k.BaselineConfig()) {
			if res.Top[i].Measured != res.Baseline {
				t.Fatalf("baseline in top set measured %v but reported baseline %v",
					res.Top[i].Measured, res.Baseline)
			}
		}
	}
}

// TestRepeatedSearchContinuesSessionHistory pins the session-commit
// behaviour: a second Search on the same session must continue each
// verified config's noise stream (fresh draws, not a replay), never
// re-charge compile time, and keep sess.Cost() covering verification
// spend.
func TestRepeatedSearchContinuesSessionHistory(t *testing.T) {
	k, err := space.ByName("mvt")
	if err != nil {
		t.Fatal(err)
	}
	sess, err := measure.NewSession(k, 37)
	if err != nil {
		t.Fatal(err)
	}
	norm := &stats.Normalizer{Means: make([]float64, k.Dim()), Stddevs: onesVec(k.Dim())}
	model := trainModel(t, sess, norm, 80)
	opts := Options{Candidates: 300, Verify: 6, VerifyObs: 2, Seed: 19, Workers: 4}

	costBefore := sess.Cost()
	first, err := Search(model, sess, norm, opts)
	if err != nil {
		t.Fatal(err)
	}
	afterFirst := sess.Cost()
	if got := afterFirst - costBefore; math.Abs(got-first.VerifyCost) > 1e-9*first.VerifyCost {
		t.Fatalf("session cost grew by %v, want the verification cost %v", got, first.VerifyCost)
	}
	second, err := Search(model, sess, norm, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Same seed, same model: the same top set is verified — but the
	// measurements must be fresh draws, not a replay of the first call.
	if !reflect.DeepEqual(first.Best.Config, second.Best.Config) &&
		first.Top[0].Measured == second.Top[0].Measured {
		t.Fatal("second search replayed the first search's draws")
	}
	replayed := 0
	for i := range second.Top {
		for j := range first.Top {
			if reflect.DeepEqual(second.Top[i].Config, first.Top[j].Config) &&
				second.Top[i].Measured == first.Top[j].Measured {
				replayed++
			}
		}
	}
	if replayed == len(second.Top) {
		t.Fatal("every verified mean was replayed identically: session history not advancing")
	}
	// The second pass re-verifies already-compiled configs: its cost
	// must be cheaper than the first by exactly the compile charges.
	if second.VerifyCost >= first.VerifyCost {
		t.Fatalf("second verification cost %v >= first %v: compile time re-charged",
			second.VerifyCost, first.VerifyCost)
	}
}
