package tuner

import (
	"fmt"
	"math"

	"alic/internal/measure"
	"alic/internal/rng"
	"alic/internal/space"
	"alic/internal/stats"
)

// RandomSearch is the classical iterative-compilation loop the paper's
// introduction describes ([30]): compile and profile randomly chosen
// configurations until the profiling budget is exhausted, and keep the
// fastest. It serves as the budget-matched baseline for model-driven
// Search: at equal simulated profiling seconds, the learned model
// covers vastly more of the space than brute-force profiling can.
type RandomSearchResult struct {
	// Best is the fastest configuration profiled.
	Best Candidate
	// Baseline is the measured -O2 runtime.
	Baseline float64
	// Speedup is Baseline / Best.Measured.
	Speedup float64
	// Evaluated is the number of configurations profiled.
	Evaluated int
	// Cost is the profiling cost consumed, in simulated seconds.
	Cost float64
}

// RandomSearch profiles random configurations (obs observations each)
// until budget simulated seconds have been spent, then reports the
// fastest configuration seen.
func RandomSearch(sess *measure.Session, budget float64, obs int, seed uint64) (*RandomSearchResult, error) {
	if sess == nil {
		return nil, fmt.Errorf("tuner: nil session")
	}
	if budget <= 0 || obs < 1 {
		return nil, fmt.Errorf("tuner: budget and obs must be positive")
	}
	sp := sess.Space()
	r := rng.NewStream(seed, 0x7a2d0)

	start := sess.Cost()
	best := Candidate{Measured: math.Inf(1)}
	evaluated := 0
	seen := make(map[uint64]bool)
	for sess.Cost()-start < budget {
		var cfg space.Config
		for {
			cfg = sp.RandomConfig(r)
			if key := sp.Key(cfg); !seen[key] {
				seen[key] = true
				break
			}
		}
		var w stats.Welford
		for j := 0; j < obs; j++ {
			y, err := sess.Observe(cfg)
			if err != nil {
				return nil, err
			}
			w.Add(y)
		}
		evaluated++
		if w.Mean() < best.Measured {
			best = Candidate{Config: cfg, Predicted: math.NaN(), Measured: w.Mean()}
		}
	}
	if evaluated == 0 {
		return nil, fmt.Errorf("tuner: budget %v too small for a single evaluation", budget)
	}

	var wb stats.Welford
	base := sp.BaselineConfig()
	for j := 0; j < obs; j++ {
		y, err := sess.Observe(base)
		if err != nil {
			return nil, err
		}
		wb.Add(y)
	}
	res := &RandomSearchResult{
		Best:      best,
		Baseline:  wb.Mean(),
		Evaluated: evaluated,
		Cost:      sess.Cost() - start,
	}
	if best.Measured > 0 {
		res.Speedup = res.Baseline / best.Measured
	}
	return res, nil
}
