// Package tuner closes the loop of §4.1 of the paper: once a
// program-specific runtime model has been learned, it can be queried
// for thousands of configurations per second, so the best optimization
// settings are found by predicting over a large random sample of the
// space and profiling only the most promising configurations — instead
// of compiling and running every candidate.
package tuner

import (
	"fmt"
	"math"
	"sort"

	"alic/internal/measure"
	"alic/internal/model"
	"alic/internal/rng"
	"alic/internal/spapt"
	"alic/internal/stats"
)

// Options configures a model-driven search.
type Options struct {
	// Candidates is the number of random configurations to rank with
	// the model.
	Candidates int
	// Verify is how many of the top-ranked configurations to actually
	// profile (each once) before declaring a winner.
	Verify int
	// VerifyObs is the number of observations per verified config.
	VerifyObs int
	// Seed drives candidate sampling.
	Seed uint64
}

// DefaultOptions returns a sensible search setup.
func DefaultOptions() Options {
	return Options{Candidates: 5000, Verify: 10, VerifyObs: 3, Seed: 1}
}

// Candidate is one ranked configuration.
type Candidate struct {
	Config    spapt.Config
	Predicted float64
	// Measured is the mean of VerifyObs observations, or NaN if the
	// candidate was not in the verified top set.
	Measured float64
}

// Result is the outcome of a model-driven search.
type Result struct {
	// Best is the verified winner (lowest measured runtime).
	Best Candidate
	// Baseline is the measured runtime of the untransformed (-O2)
	// configuration, for speedup reporting.
	Baseline float64
	// Speedup is Baseline / Best.Measured.
	Speedup float64
	// Top holds the verified candidates, best first.
	Top []Candidate
	// VerifyCost is the profiling cost spent on verification, in
	// simulated seconds.
	VerifyCost float64
}

// Normalizer maps a raw configuration to model features.
type Normalizer interface {
	Transform(x []float64) []float64
}

// Search ranks random configurations with any trained predictor (a
// model.Model from a learning run, or anything else implementing
// model.Predictor) and verifies the top few on the profiling session.
func Search(m model.Predictor, sess *measure.Session, norm Normalizer, opts Options) (*Result, error) {
	if model.IsNil(m) || sess == nil || norm == nil {
		return nil, fmt.Errorf("tuner: nil model, session or normalizer")
	}
	if opts.Candidates < 1 || opts.Verify < 1 || opts.VerifyObs < 1 {
		return nil, fmt.Errorf("tuner: Candidates, Verify and VerifyObs must be >= 1")
	}
	if opts.Verify > opts.Candidates {
		opts.Verify = opts.Candidates
	}
	k := sess.Kernel()
	r := rng.NewStream(opts.Seed, 0x7c7e12)

	// Rank candidates by predicted runtime.
	cands := make([]Candidate, opts.Candidates)
	seen := make(map[uint64]bool, opts.Candidates)
	for i := range cands {
		var cfg spapt.Config
		for {
			cfg = k.RandomConfig(r)
			key := k.Key(cfg)
			if !seen[key] {
				seen[key] = true
				break
			}
		}
		feats := norm.Transform(k.Features(cfg))
		cands[i] = Candidate{
			Config:    cfg,
			Predicted: m.PredictMeanFast(feats),
			Measured:  math.NaN(),
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].Predicted < cands[j].Predicted })

	// Verify the top slice with real (simulated) profiling.
	costBefore := sess.Cost()
	top := cands[:opts.Verify]
	for i := range top {
		var w stats.Welford
		for j := 0; j < opts.VerifyObs; j++ {
			y, err := sess.Observe(top[i].Config)
			if err != nil {
				return nil, err
			}
			w.Add(y)
		}
		top[i].Measured = w.Mean()
	}
	sort.Slice(top, func(i, j int) bool { return top[i].Measured < top[j].Measured })

	// Baseline for speedup reporting.
	var wb stats.Welford
	base := k.BaselineConfig()
	for j := 0; j < opts.VerifyObs; j++ {
		y, err := sess.Observe(base)
		if err != nil {
			return nil, err
		}
		wb.Add(y)
	}

	res := &Result{
		Best:       top[0],
		Baseline:   wb.Mean(),
		Top:        top,
		VerifyCost: sess.Cost() - costBefore,
	}
	if res.Best.Measured > 0 {
		res.Speedup = res.Baseline / res.Best.Measured
	}
	return res, nil
}
