// Package tuner closes the loop of §4.1 of the paper: once a
// program-specific runtime model has been learned, it can be queried
// for thousands of configurations per second, so the best optimization
// settings are found by predicting over a large random sample of the
// space and profiling only the most promising configurations — instead
// of compiling and running every candidate.
//
// Verification — the only part that pays real profiling cost — runs
// through the evaluator engine (internal/evaluator): the top-ranked
// candidates measure in parallel across Options.Workers, and because
// every observation addresses its own deterministic noise draw, the
// measured runtimes, the winner, and the verification cost are
// bit-identical at every worker count.
package tuner

import (
	"fmt"
	"math"
	"sort"

	"alic/internal/evaluator"
	"alic/internal/measure"
	"alic/internal/model"
	"alic/internal/rng"
	"alic/internal/space"
	"alic/internal/stats"
)

// Options configures a model-driven search.
type Options struct {
	// Candidates is the number of random configurations to rank with
	// the model.
	Candidates int
	// Verify is how many of the top-ranked configurations to actually
	// profile (each once) before declaring a winner.
	Verify int
	// VerifyObs is the number of observations per verified config.
	VerifyObs int
	// Seed drives candidate sampling.
	Seed uint64
	// Workers bounds concurrent verification measurements
	// (0 = GOMAXPROCS, 1 = serial). The verified runtimes and the
	// winner are bit-identical for every value.
	Workers int
}

// DefaultOptions returns a sensible search setup.
func DefaultOptions() Options {
	return Options{Candidates: 5000, Verify: 10, VerifyObs: 3, Seed: 1}
}

// Candidate is one ranked configuration.
type Candidate struct {
	Config    space.Config
	Predicted float64
	// Measured is the mean of VerifyObs observations, or NaN if the
	// candidate was not in the verified top set.
	Measured float64
}

// Result is the outcome of a model-driven search.
type Result struct {
	// Best is the verified winner (lowest measured runtime).
	Best Candidate
	// Baseline is the measured runtime of the untransformed (-O2)
	// configuration, for speedup reporting.
	Baseline float64
	// Speedup is Baseline / Best.Measured.
	Speedup float64
	// Top holds the verified candidates, best first.
	Top []Candidate
	// VerifyCost is the profiling cost spent on verification
	// (including the baseline measurement), in simulated seconds.
	VerifyCost float64
}

// Normalizer maps a raw configuration to model features.
type Normalizer interface {
	Transform(x []float64) []float64
}

// Search ranks random configurations with any trained predictor (a
// model.Model from a learning run, or anything else implementing
// model.Predictor) and verifies the top few on the profiling session
// through a parallel evaluator engine.
func Search(m model.Predictor, sess *measure.Session, norm Normalizer, opts Options) (*Result, error) {
	if model.IsNil(m) || sess == nil || norm == nil {
		return nil, fmt.Errorf("tuner: nil model, session or normalizer")
	}
	if opts.Candidates < 1 || opts.Verify < 1 || opts.VerifyObs < 1 {
		return nil, fmt.Errorf("tuner: Candidates, Verify and VerifyObs must be >= 1")
	}
	if opts.Verify > opts.Candidates {
		opts.Verify = opts.Candidates
	}
	sp := sess.Space()
	r := rng.NewStream(opts.Seed, 0x7c7e12)

	// Rank candidates by predicted runtime.
	cands := make([]Candidate, opts.Candidates)
	seen := make(map[uint64]bool, opts.Candidates)
	for i := range cands {
		var cfg space.Config
		for {
			cfg = sp.RandomConfig(r)
			key := sp.Key(cfg)
			if !seen[key] {
				seen[key] = true
				break
			}
		}
		feats := norm.Transform(sp.Features(cfg))
		cands[i] = Candidate{
			Config:    cfg,
			Predicted: m.PredictMeanFast(feats),
			Measured:  math.NaN(),
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].Predicted < cands[j].Predicted })

	// Verify the top slice plus the -O2 baseline through one engine:
	// every item takes VerifyObs observations, measured with up to
	// Workers goroutines; the engine's ledger is the verification
	// cost. The candidate set is already key-deduplicated; the
	// baseline joins it as an extra item unless the model happened to
	// rank it into the top set, in which case its verified mean
	// doubles as the baseline measurement.
	top := cands[:opts.Verify]
	cfgs := make([]space.Config, 0, len(top)+1)
	for i := range top {
		cfgs = append(cfgs, top[i].Config)
	}
	base := sp.BaselineConfig()
	baseItem := -1
	baseKey := sp.Key(base)
	for i := range top {
		if sp.Key(top[i].Config) == baseKey {
			baseItem = i
		}
	}
	if baseItem < 0 {
		baseItem = len(cfgs)
		cfgs = append(cfgs, base)
	}
	src, err := evaluator.NewSessionSource(sess, cfgs)
	if err != nil {
		return nil, err
	}
	eng := evaluator.New(src, evaluator.Options{Workers: opts.Workers})
	items := make([]int, len(cfgs))
	for item := range cfgs {
		items[item] = item
	}
	obs, err := eng.ObserveBatch(evaluator.Repeat(items, opts.VerifyObs))
	if err != nil {
		return nil, err
	}
	means := make([]float64, len(cfgs))
	for item := range cfgs {
		var w stats.Welford
		var charged float64
		for _, o := range obs[item*opts.VerifyObs : (item+1)*opts.VerifyObs] {
			w.Add(o.Value)
			charged += o.Compile
			charged += o.Value
		}
		means[item] = w.Mean()
		// Commit the engine-driven measurements back into the session's
		// history, so a later Search (or Observe) on the same session
		// continues each config's noise stream instead of replaying it,
		// compiles are never re-charged, and sess.Cost() keeps covering
		// verification spend as it always did.
		sess.RecordExternal(cfgs[item], opts.VerifyObs, charged)
	}
	for i := range top {
		top[i].Measured = means[i]
	}
	sort.Slice(top, func(i, j int) bool { return top[i].Measured < top[j].Measured })

	res := &Result{
		Best:       top[0],
		Baseline:   means[baseItem],
		Top:        top,
		VerifyCost: eng.Cost(),
	}
	if res.Best.Measured > 0 {
		res.Speedup = res.Baseline / res.Best.Measured
	}
	return res, nil
}
