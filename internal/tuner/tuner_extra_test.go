package tuner

import (
	"testing"

	"alic/internal/dynatree"
)

func TestSearchRejectsTypedNilModel(t *testing.T) {
	var f *dynatree.Forest // typed nil wrapped into the interface
	if _, err := Search(f, nil, nil, DefaultOptions()); err == nil {
		t.Fatal("typed-nil model accepted")
	}
}
