package tuner

import (
	"math"
	"testing"

	"alic/internal/dynatree"
	"alic/internal/measure"
	"alic/internal/rng"
	"alic/internal/space"
	_ "alic/internal/space/spaptspace"
	"alic/internal/stats"
)

// trainModel fits a small forest on random observations of the kernel.
func trainModel(t *testing.T, sess *measure.Session, norm *stats.Normalizer, n int) *dynatree.Forest {
	t.Helper()
	k := sess.Space()
	cfg := dynatree.DefaultConfig()
	cfg.Particles = 80
	cfg.ScoreParticles = 30
	r := rng.New(7)
	var feats [][]float64
	var ys []float64
	for i := 0; i < n; i++ {
		c := k.RandomConfig(r)
		y, err := sess.Observe(c)
		if err != nil {
			t.Fatal(err)
		}
		feats = append(feats, norm.Transform(k.Features(c)))
		ys = append(ys, y)
	}
	cfg.CalibratePrior(ys)
	f, err := dynatree.New(cfg, k.Dim(), rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	f.UpdateBatch(feats, ys)
	return f
}

// identityNorm passes features through unchanged.
type identityNorm struct{}

func (identityNorm) Transform(x []float64) []float64 { return x }

func TestSearchValidation(t *testing.T) {
	k, _ := space.ByName("mvt")
	sess, _ := measure.NewSession(k, 1)
	model, _ := dynatree.New(dynatree.DefaultConfig(), k.Dim(), rng.New(1))
	if _, err := Search(nil, sess, identityNorm{}, DefaultOptions()); err == nil {
		t.Fatal("nil model accepted")
	}
	if _, err := Search(model, nil, identityNorm{}, DefaultOptions()); err == nil {
		t.Fatal("nil session accepted")
	}
	if _, err := Search(model, sess, nil, DefaultOptions()); err == nil {
		t.Fatal("nil normalizer accepted")
	}
	bad := DefaultOptions()
	bad.Candidates = 0
	if _, err := Search(model, sess, identityNorm{}, bad); err == nil {
		t.Fatal("zero candidates accepted")
	}
}

func TestSearchFindsFasterThanBaseline(t *testing.T) {
	k, _ := space.ByName("mvt")
	sess, err := measure.NewSession(k, 3)
	if err != nil {
		t.Fatal(err)
	}
	norm := &stats.Normalizer{
		Means:   make([]float64, k.Dim()),
		Stddevs: onesVec(k.Dim()),
	}
	model := trainModel(t, sess, norm, 250)

	opts := Options{Candidates: 800, Verify: 8, VerifyObs: 2, Seed: 5}
	res, err := Search(model, sess, norm, opts)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.Best.Measured) || res.Best.Measured <= 0 {
		t.Fatalf("best not measured: %+v", res.Best)
	}
	if len(res.Top) != 8 {
		t.Fatalf("verified %d candidates, want 8", len(res.Top))
	}
	// The model-guided winner should at least not be slower than the
	// plain -O2 baseline (mvt's space contains much faster points).
	if res.Best.Measured > res.Baseline*1.05 {
		t.Fatalf("winner %v slower than baseline %v", res.Best.Measured, res.Baseline)
	}
	if res.Speedup <= 0 {
		t.Fatalf("speedup %v", res.Speedup)
	}
	if res.VerifyCost <= 0 {
		t.Fatal("verification cost not accounted")
	}
	// Top must be sorted by measured runtime.
	for i := 1; i < len(res.Top); i++ {
		if res.Top[i].Measured < res.Top[i-1].Measured {
			t.Fatal("top set not sorted by measured runtime")
		}
	}
}

func TestVerifyClampedToCandidates(t *testing.T) {
	k, _ := space.ByName("mvt")
	sess, _ := measure.NewSession(k, 9)
	norm := &stats.Normalizer{Means: make([]float64, k.Dim()), Stddevs: onesVec(k.Dim())}
	model := trainModel(t, sess, norm, 60)
	opts := Options{Candidates: 5, Verify: 50, VerifyObs: 1, Seed: 2}
	res, err := Search(model, sess, norm, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Top) != 5 {
		t.Fatalf("verified %d, want clamp to 5", len(res.Top))
	}
}

func onesVec(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

func TestRandomSearchValidation(t *testing.T) {
	k, _ := space.ByName("mvt")
	sess, _ := measure.NewSession(k, 21)
	if _, err := RandomSearch(nil, 10, 1, 1); err == nil {
		t.Fatal("nil session accepted")
	}
	if _, err := RandomSearch(sess, 0, 1, 1); err == nil {
		t.Fatal("zero budget accepted")
	}
	if _, err := RandomSearch(sess, 10, 0, 1); err == nil {
		t.Fatal("zero obs accepted")
	}
}

func TestRandomSearchRespectsBudget(t *testing.T) {
	k, _ := space.ByName("mvt")
	sess, _ := measure.NewSession(k, 22)
	res, err := RandomSearch(sess, 30, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated < 1 {
		t.Fatal("no configurations evaluated")
	}
	// The search may overshoot by at most one evaluation plus the
	// baseline measurement.
	if res.Cost > 30+20 {
		t.Fatalf("budget overshot: %v", res.Cost)
	}
	if res.Best.Measured <= 0 || math.IsInf(res.Best.Measured, 0) {
		t.Fatalf("bad best %+v", res.Best)
	}
	if res.Speedup <= 0 {
		t.Fatalf("speedup %v", res.Speedup)
	}
}

func TestRandomSearchImprovesWithBudget(t *testing.T) {
	// More budget cannot make the best-found slower (same seed).
	run := func(budget float64) float64 {
		k, _ := space.ByName("gemver")
		sess, _ := measure.NewSession(k, 23)
		res, err := RandomSearch(sess, budget, 1, 5)
		if err != nil {
			t.Fatal(err)
		}
		return res.Best.Measured
	}
	small := run(50)
	large := run(500)
	if large > small+1e-9 {
		t.Fatalf("larger budget found worse config: %v vs %v", large, small)
	}
}
