package experiment

import (
	"fmt"

	"alic/internal/spapt"
)

// Section43Row holds the sampling-plan adequacy rates of §4.3 of the
// paper for one kernel: the fraction of configurations whose 95%
// CI/mean ratio breaches a threshold at a given sample size. The paper
// reports, across its benchmarks: 5% of examples break the 1%
// threshold at 35 observations; 0.5% break the 5% threshold at 35;
// 3.3% break 5% at 5 observations; 5% break 5% at 2 observations.
type Section43Row struct {
	Benchmark string
	// Fail1At35 is the fraction breaching CI/mean > 1% with 35 obs.
	Fail1At35 float64
	// Fail5At35 is the fraction breaching CI/mean > 5% with 35 obs.
	Fail5At35 float64
	// Fail5At5 is the fraction breaching CI/mean > 5% with 5 obs.
	Fail5At5 float64
	// Fail5At2 is the fraction breaching CI/mean > 5% with 2 obs.
	Fail5At2 float64
}

// Section43Result aggregates per-kernel rows and the suite-wide rates
// (configuration-weighted means, matching the paper's "across our
// benchmarks" framing).
type Section43Result struct {
	Rows  []Section43Row
	Suite Section43Row
}

// Section43 reproduces the §4.3 sampling-plan adequacy study for the
// given kernels (nil means the whole suite).
func Section43(kernels []*spapt.Kernel, s Settings, progress func(string)) (*Section43Result, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	if kernels == nil {
		kernels = spapt.Kernels()
	}
	res := &Section43Result{Suite: Section43Row{Benchmark: "suite"}}
	total := 0
	for _, k := range kernels {
		if progress != nil {
			progress(fmt.Sprintf("section 4.3: %s", k.Name))
		}
		ds, err := buildDataset(k, s)
		if err != nil {
			return nil, err
		}
		row := Section43Row{Benchmark: k.Name}
		if row.Fail1At35, err = FailureRates(ds, min(35, s.NObs), 0.01, 0.95); err != nil {
			return nil, err
		}
		if row.Fail5At35, err = FailureRates(ds, min(35, s.NObs), 0.05, 0.95); err != nil {
			return nil, err
		}
		if row.Fail5At5, err = FailureRates(ds, 5, 0.05, 0.95); err != nil {
			return nil, err
		}
		if row.Fail5At2, err = FailureRates(ds, 2, 0.05, 0.95); err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)

		n := len(ds.Configs)
		res.Suite.Fail1At35 += row.Fail1At35 * float64(n)
		res.Suite.Fail5At35 += row.Fail5At35 * float64(n)
		res.Suite.Fail5At5 += row.Fail5At5 * float64(n)
		res.Suite.Fail5At2 += row.Fail5At2 * float64(n)
		total += n
	}
	if total > 0 {
		res.Suite.Fail1At35 /= float64(total)
		res.Suite.Fail5At35 /= float64(total)
		res.Suite.Fail5At5 /= float64(total)
		res.Suite.Fail5At2 /= float64(total)
	}
	return res, nil
}
