package experiment

import (
	"fmt"
	"math"

	"alic/internal/spapt"
	"alic/internal/stats"
)

// Table1Row is one benchmark's line of Table 1: the lowest RMSE both
// approaches reach, the profiling cost each needs to first reach it,
// and the resulting speed-up.
type Table1Row struct {
	Benchmark        string
	SpaceSize        float64
	LowestCommonRMSE float64
	BaselineCost     float64 // seconds, fixed 35-observation plan
	OurCost          float64 // seconds, variable-observation plan
	Speedup          float64 // BaselineCost / OurCost
}

// Table1Result aggregates all rows plus the geometric-mean speed-up
// (the paper reports 3.97x).
type Table1Result struct {
	Rows           []Table1Row
	GeoMeanSpeedup float64
	// Curves keeps the per-kernel averaged curves so Figure 6 can be
	// rendered from the same run.
	Curves []*BenchmarkCurves
}

// LowestCommon computes the paper's §5.1 comparison between two
// averaged curves: the lowest error both reach, and the cost each
// needs to first reach it.
func LowestCommon(baseline, ours Curve) (level, baseCost, ourCost float64) {
	level = math.Max(baseline.MinError(), ours.MinError())
	return level, baseline.CostToReach(level), ours.CostToReach(level)
}

// Table1 runs the full comparison for the given kernels (nil means the
// whole suite) and assembles the paper's Table 1.
func Table1(kernels []*spapt.Kernel, s Settings, progress func(string)) (*Table1Result, error) {
	if kernels == nil {
		kernels = spapt.Kernels()
	}
	res := &Table1Result{}
	var speedups []float64
	for _, k := range kernels {
		bc, err := RunCurves(k, s, progress)
		if err != nil {
			return nil, fmt.Errorf("table1 %s: %w", k.Name, err)
		}
		res.Curves = append(res.Curves, bc)
		baseline := bc.Curves[AllObservations]
		ours := bc.Curves[VariableObservations]
		level, baseCost, ourCost := LowestCommon(baseline, ours)
		row := Table1Row{
			Benchmark:        k.Name,
			SpaceSize:        k.SpaceSize(),
			LowestCommonRMSE: level,
			BaselineCost:     baseCost,
			OurCost:          ourCost,
		}
		if ourCost > 0 && !math.IsInf(ourCost, 0) && !math.IsInf(baseCost, 0) {
			row.Speedup = baseCost / ourCost
		}
		res.Rows = append(res.Rows, row)
		if row.Speedup > 0 {
			speedups = append(speedups, row.Speedup)
		}
	}
	if len(speedups) > 0 {
		gm, err := stats.GeometricMean(speedups)
		if err != nil {
			return nil, err
		}
		res.GeoMeanSpeedup = gm
	}
	return res, nil
}
