package experiment

import (
	"math"
	"testing"

	"alic/internal/spapt"
)

// tinySettings keeps experiment tests fast.
func tinySettings() Settings {
	return Settings{
		NInit: 3, NObs: 8, NCand: 30, NMax: 60,
		Particles: 50, ScoreParticles: 20,
		Reps:        2,
		PoolConfigs: 250, TestConfigs: 80,
		EvalEvery: 10,
		Seed:      7,
	}
}

func TestSettingsValidate(t *testing.T) {
	if err := FastSettings().validate(); err != nil {
		t.Fatal(err)
	}
	if err := PaperSettings().validate(); err != nil {
		t.Fatal(err)
	}
	bad := tinySettings()
	bad.Reps = 0
	if err := bad.validate(); err == nil {
		t.Fatal("zero reps accepted")
	}
	bad2 := tinySettings()
	bad2.NMax = 1
	if err := bad2.validate(); err == nil {
		t.Fatal("NMax < NInit accepted")
	}
}

func TestPaperSettingsMatchSection44(t *testing.T) {
	s := PaperSettings()
	if s.NInit != 5 || s.NObs != 35 || s.NCand != 500 || s.NMax != 2500 {
		t.Fatalf("learner budgets %+v do not match §4.4", s)
	}
	if s.Particles != 5000 {
		t.Fatalf("particles %d, paper uses 5000", s.Particles)
	}
	if s.Reps != 10 || s.PoolConfigs != 7500 || s.TestConfigs != 2500 {
		t.Fatalf("dataset scale %+v does not match §4.5", s)
	}
}

func TestStrategyStrings(t *testing.T) {
	if AllObservations.String() != "all observations" ||
		OneObservation.String() != "one observation" ||
		VariableObservations.String() != "variable observations" {
		t.Fatal("strategy names wrong")
	}
	if len(Strategies()) != 3 {
		t.Fatal("want 3 strategies")
	}
}

func TestRunCurvesShapes(t *testing.T) {
	// correlation's ~4 s runtime dwarfs its compile time, so the cost
	// gap between the plans is driven by observation counts. (For
	// compile-dominated kernels like mvt the gap is legitimately small
	// — that is exactly the paper's low-speed-up case.)
	k, _ := spapt.ByName("correlation")
	bc, err := RunCurves(k, tinySettings(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(bc.Curves) != 3 {
		t.Fatalf("got %d curves", len(bc.Curves))
	}
	for strat, c := range bc.Curves {
		if len(c.Cost) == 0 || len(c.Cost) != len(c.Error) {
			t.Fatalf("%v: malformed curve", strat)
		}
		prev := 0.0
		for i, cost := range c.Cost {
			if cost <= prev {
				t.Fatalf("%v: cost not increasing at %d", strat, i)
			}
			prev = cost
			if c.Error[i] <= 0 || math.IsNaN(c.Error[i]) {
				t.Fatalf("%v: bad error %v", strat, c.Error[i])
			}
		}
	}
	// The fixed-35 plan must be far more expensive than the variable
	// plan at equal acquisition counts.
	all := bc.Curves[AllObservations]
	variable := bc.Curves[VariableObservations]
	if all.Cost[len(all.Cost)-1] < 3*variable.Cost[len(variable.Cost)-1] {
		t.Fatalf("fixed-35 cost %v not well above variable %v",
			all.Cost[len(all.Cost)-1], variable.Cost[len(variable.Cost)-1])
	}
}

func TestCurveHelpers(t *testing.T) {
	c := Curve{
		Cost:  []float64{1, 2, 3, 4},
		Error: []float64{0.9, 0.5, 0.7, 0.4},
	}
	if got := c.MinError(); got != 0.4 {
		t.Fatalf("MinError %v", got)
	}
	if got := c.CostToReach(0.5); got != 2 {
		t.Fatalf("CostToReach(0.5) = %v", got)
	}
	if got := c.CostToReach(0.1); !math.IsInf(got, 1) {
		t.Fatalf("unreachable level returned %v", got)
	}
}

func TestLowestCommon(t *testing.T) {
	baseline := Curve{Cost: []float64{10, 20, 30}, Error: []float64{0.9, 0.6, 0.3}}
	ours := Curve{Cost: []float64{1, 2, 3}, Error: []float64{0.8, 0.5, 0.45}}
	level, baseCost, ourCost := LowestCommon(baseline, ours)
	if level != 0.45 {
		t.Fatalf("level %v, want 0.45 (max of the two minima)", level)
	}
	if baseCost != 30 {
		t.Fatalf("baseline cost %v", baseCost)
	}
	if ourCost != 3 {
		t.Fatalf("our cost %v", ourCost)
	}
}

func TestTable1SingleKernel(t *testing.T) {
	k, _ := spapt.ByName("lu")
	res, err := Table1([]*spapt.Kernel{k}, tinySettings(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows %d", len(res.Rows))
	}
	row := res.Rows[0]
	if row.Benchmark != "lu" {
		t.Fatalf("benchmark %q", row.Benchmark)
	}
	if row.LowestCommonRMSE <= 0 {
		t.Fatalf("common RMSE %v", row.LowestCommonRMSE)
	}
	if row.BaselineCost <= 0 || row.OurCost <= 0 {
		t.Fatalf("costs %v %v", row.BaselineCost, row.OurCost)
	}
	if row.Speedup <= 0 {
		t.Fatalf("speedup %v", row.Speedup)
	}
	if math.Abs(res.GeoMeanSpeedup-row.Speedup) > 1e-12 {
		t.Fatal("geomean of one row must equal the row")
	}
	if len(res.Curves) != 1 {
		t.Fatal("curves not retained")
	}
}

func TestTable2(t *testing.T) {
	ks := []*spapt.Kernel{}
	for _, n := range []string{"lu", "correlation"} {
		k, _ := spapt.ByName(n)
		ks = append(ks, k)
	}
	s := tinySettings()
	res, err := Table2(ks, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows %d", len(res.Rows))
	}
	lu, corr := res.Rows[0], res.Rows[1]
	// The loud kernel must show higher mean variance (Table 2 ordering).
	if corr.Variance.Mean <= lu.Variance.Mean {
		t.Fatalf("correlation variance %v not above lu %v",
			corr.Variance.Mean, lu.Variance.Mean)
	}
	// 5-sample CIs are wider than the full-plan CIs on average.
	for _, row := range res.Rows {
		if row.CI5.Mean <= row.CI35.Mean {
			t.Fatalf("%s: CI5 mean %v not above CI35 mean %v",
				row.Benchmark, row.CI5.Mean, row.CI35.Mean)
		}
	}
}

func TestFailureRates(t *testing.T) {
	k, _ := spapt.ByName("correlation")
	ds, err := buildDataset(k, tinySettings())
	if err != nil {
		t.Fatal(err)
	}
	rate, err := FailureRates(ds, 5, 0.05, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if rate < 0 || rate > 1 {
		t.Fatalf("rate %v", rate)
	}
	// A loud kernel must have some failures at 5 observations.
	if rate == 0 {
		t.Fatal("correlation shows no CI failures at 5 observations")
	}
	if _, err := FailureRates(ds, 1, 0.05, 0.95); err == nil {
		t.Fatal("nObs=1 accepted")
	}
}

func TestFigure1(t *testing.T) {
	res, err := Figure1(8, 10, 1e-4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Factors) != 8 || len(res.MAE1) != 8 || len(res.Counts) != 8 {
		t.Fatal("grid shapes wrong")
	}
	if res.FixedRuns != 8*8*10 {
		t.Fatalf("fixed runs %d", res.FixedRuns)
	}
	if res.AdaptiveRuns >= res.FixedRuns {
		t.Fatalf("adaptive plan (%d runs) no cheaper than fixed (%d)",
			res.AdaptiveRuns, res.FixedRuns)
	}
	sawOne, sawMany := false, false
	for a := range res.Counts {
		for b := range res.Counts[a] {
			c := res.Counts[a][b]
			if c < 1 || c > 10 {
				t.Fatalf("count %d out of range", c)
			}
			if c == 1 {
				sawOne = true
			}
			if c > 1 {
				sawMany = true
			}
			if res.MAEOpt[a][b] < 0 || res.MAE1[a][b] < 0 {
				t.Fatal("negative MAE")
			}
		}
	}
	// The paper's key observation: "for most but not all points, a
	// single sample is enough".
	if !sawOne || !sawMany {
		t.Fatalf("counts not heterogeneous (sawOne=%v sawMany=%v)", sawOne, sawMany)
	}
	if _, err := Figure1(1, 10, 1e-4, 3); err == nil {
		t.Fatal("bad grid accepted")
	}
}

func TestFigure2(t *testing.T) {
	res, err := Figure2(30, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Factors) != 30 || len(res.Observed) != 30 || len(res.TrueMean) != 30 {
		t.Fatal("lengths wrong")
	}
	for i := range res.Observed {
		if res.Observed[i] <= 0 || res.TrueMean[i] <= 0 {
			t.Fatal("non-positive runtime")
		}
	}
	// Figure 2 structure: the curve climbs from the low plateau to a
	// higher one.
	if res.TrueMean[29] <= res.TrueMean[0]*1.05 {
		t.Fatalf("no climb: %v -> %v", res.TrueMean[0], res.TrueMean[29])
	}
	// Late plateau: last five factors roughly flat.
	late := math.Abs(res.TrueMean[29]-res.TrueMean[24]) / res.TrueMean[24]
	if late > 0.1 {
		t.Fatalf("late region not flat: %v", late)
	}
	if _, err := Figure2(1, 5); err == nil {
		t.Fatal("bad factor accepted")
	}
}

func TestFigure6(t *testing.T) {
	if got := Figure6Kernels(); len(got) != 6 {
		t.Fatalf("Figure 6 kernels %v", got)
	}
	out, err := Figure6([]string{"mvt"}, tinySettings(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || len(out[0].Curves) != 3 {
		t.Fatal("Figure 6 output malformed")
	}
	if _, err := Figure6([]string{"bogus"}, tinySettings(), nil); err == nil {
		t.Fatal("unknown kernel accepted")
	}
}

func TestSection43(t *testing.T) {
	ks := []*spapt.Kernel{}
	for _, n := range []string{"lu", "correlation"} {
		k, _ := spapt.ByName(n)
		ks = append(ks, k)
	}
	res, err := Section43(ks, tinySettings(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		for _, v := range []float64{row.Fail1At35, row.Fail5At35, row.Fail5At5, row.Fail5At2} {
			if v < 0 || v > 1 {
				t.Fatalf("%s: rate %v out of [0,1]", row.Benchmark, v)
			}
		}
		// Fewer observations can only fail more often at the same
		// threshold (up to sampling noise on tiny corpora; require
		// no gross inversion).
		if row.Fail5At2 < row.Fail5At35-0.05 {
			t.Fatalf("%s: 2-obs failure rate %v below 35-obs %v",
				row.Benchmark, row.Fail5At2, row.Fail5At35)
		}
		// The 1%% threshold is stricter than 5%% at equal obs.
		if row.Fail1At35 < row.Fail5At35 {
			t.Fatalf("%s: stricter threshold fails less often", row.Benchmark)
		}
	}
	// The loud kernel must break thresholds more often than the quiet.
	if res.Rows[1].Fail1At35 <= res.Rows[0].Fail1At35 {
		t.Fatalf("correlation (%v) not failing more than lu (%v)",
			res.Rows[1].Fail1At35, res.Rows[0].Fail1At35)
	}
	// Suite row is a weighted average, so it lies between the rows.
	lo, hi := res.Rows[0].Fail1At35, res.Rows[1].Fail1At35
	if lo > hi {
		lo, hi = hi, lo
	}
	if res.Suite.Fail1At35 < lo-1e-9 || res.Suite.Fail1At35 > hi+1e-9 {
		t.Fatalf("suite rate %v outside [%v, %v]", res.Suite.Fail1At35, lo, hi)
	}
}

func TestRunCurvesParallelDeterminism(t *testing.T) {
	// Concurrency must not change results: 1 worker vs many workers.
	k, _ := spapt.ByName("mvt")
	s1 := tinySettings()
	s1.Workers = 1
	sN := tinySettings()
	sN.Workers = 4
	a, err := RunCurves(k, s1, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCurves(k, sN, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range Strategies() {
		ca, cb := a.Curves[strat], b.Curves[strat]
		if len(ca.Cost) != len(cb.Cost) {
			t.Fatalf("%v: curve lengths differ", strat)
		}
		for i := range ca.Cost {
			if ca.Cost[i] != cb.Cost[i] || ca.Error[i] != cb.Error[i] {
				t.Fatalf("%v: parallel run diverged at point %d", strat, i)
			}
		}
	}
}
