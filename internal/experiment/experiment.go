// Package experiment regenerates every table and figure of the paper's
// evaluation (§5):
//
//   - Table 1 / Figure 5: lowest common RMSE, profiling cost of the
//     fixed-35 baseline vs the variable-observation approach, per-kernel
//     speed-ups and their geometric mean.
//   - Table 2: spread of runtime variance and 95% CI/mean ratios at 35
//     and 5 observations per configuration.
//   - Figure 1: MAE over the mm unroll plane for one sample vs the
//     per-point optimal sample count.
//   - Figure 2: runtime vs unroll factor for adi with single samples.
//   - Figure 6: RMSE vs cumulative profiling cost for the three
//     sampling plans.
//
// Absolute costs differ from the paper (the substrate is a simulator,
// not the authors' testbed); the comparisons target the paper's
// qualitative shape: who wins, by roughly what factor, and where the
// crossovers fall. See EXPERIMENTS.md for the recorded outcomes.
package experiment

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"

	"alic/internal/core"
	"alic/internal/dataset"
	"alic/internal/dynatree"
	"alic/internal/evaluator"
	"alic/internal/model"
	"alic/internal/space/spaptspace"
	"alic/internal/spapt"
	"alic/internal/stats"
	"alic/internal/workpool"
)

// Settings scales the experiments. PaperSettings reproduces §4.4/§4.5
// exactly; FastSettings is a laptop-scale variant that preserves the
// qualitative results.
type Settings struct {
	// NInit, NObs, NCand, NMax parameterise Algorithm 1 (§4.4).
	NInit, NObs, NCand, NMax int
	// Particles and ScoreParticles size the dynamic-tree cloud.
	Particles, ScoreParticles int
	// Reps is the number of repetitions averaged (paper: 10).
	Reps int
	// PoolConfigs/TestConfigs split the dataset (paper: 7500/2500).
	PoolConfigs, TestConfigs int
	// EvalEvery is the learning-curve sampling interval (acquisitions).
	EvalEvery int
	// Seed is the base seed; repetition r uses Seed+r.
	Seed uint64
	// Workers bounds the number of concurrent learning runs
	// (0 = GOMAXPROCS). Runs are independent and deterministic per
	// (strategy, repetition), so parallelism does not change results.
	// The same value is threaded into each learner's candidate-scoring
	// pool (core.Options.Workers), whose sharding is likewise
	// bit-deterministic; the scoring pool is shared process-wide and
	// capped at GOMAXPROCS, so the two levels of parallelism cannot
	// oversubscribe the machine.
	Workers int
}

// PaperSettings returns the paper's experimental parameters (§4.4,
// §4.5). Running all of Table 1 at this scale takes hours of CPU.
func PaperSettings() Settings {
	return Settings{
		NInit: 5, NObs: 35, NCand: 500, NMax: 2500,
		Particles: 5000, ScoreParticles: 250,
		Reps:        10,
		PoolConfigs: 7500, TestConfigs: 2500,
		EvalEvery: 50,
		Seed:      1,
	}
}

// FastSettings returns a scaled-down configuration that finishes the
// full Table 1 in minutes while preserving the paper's qualitative
// results (orderings and approximate speed-up bands).
func FastSettings() Settings {
	return Settings{
		NInit: 5, NObs: 35, NCand: 120, NMax: 320,
		Particles: 300, ScoreParticles: 50,
		Reps:        3,
		PoolConfigs: 1600, TestConfigs: 500,
		EvalEvery: 16,
		Seed:      1,
	}
}

func (s Settings) validate() error {
	if s.NInit < 1 || s.NObs < 1 || s.NCand < 1 || s.NMax < s.NInit {
		return fmt.Errorf("experiment: bad learner budgets %+v", s)
	}
	if s.Particles < 1 || s.Reps < 1 || s.EvalEvery < 1 {
		return fmt.Errorf("experiment: bad model/rep settings %+v", s)
	}
	if s.PoolConfigs < s.NInit || s.TestConfigs < 1 {
		return fmt.Errorf("experiment: bad dataset sizes %+v", s)
	}
	return nil
}

// Strategy identifies the three sampling plans of §4.3.
type Strategy int

const (
	// AllObservations is the fixed 35-observation baseline of [4].
	AllObservations Strategy = iota
	// OneObservation is the fixed single-observation variant.
	OneObservation
	// VariableObservations is the paper's contribution.
	VariableObservations
)

func (s Strategy) String() string {
	switch s {
	case AllObservations:
		return "all observations"
	case OneObservation:
		return "one observation"
	case VariableObservations:
		return "variable observations"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Strategies lists the three plans in the paper's plotting order.
func Strategies() []Strategy {
	return []Strategy{AllObservations, OneObservation, VariableObservations}
}

// learnerOptions maps a strategy to core options under the settings.
func (s Settings) learnerOptions(strat Strategy, rep int) core.Options {
	tree := dynatree.DefaultConfig()
	tree.Particles = s.Particles
	tree.ScoreParticles = s.ScoreParticles
	opts := core.Options{
		NInit:     s.NInit,
		NObs:      s.NObs,
		NCand:     s.NCand,
		NMax:      s.NMax,
		Batch:     1,
		Scorer:    core.ALC,
		Tree:      tree,
		EvalEvery: s.EvalEvery,
		Seed:      s.Seed + uint64(rep)*1000003,
		Workers:   s.Workers,
	}
	switch strat {
	case AllObservations:
		opts.Plan = core.FixedPlan
		opts.PlanObs = s.NObs
	case OneObservation:
		opts.Plan = core.FixedPlan
		opts.PlanObs = 1
	case VariableObservations:
		opts.Plan = core.VariablePlan
		opts.PlanObs = 1
	}
	return opts
}

// Curve is an averaged learning curve: Cost[i] is the mean cumulative
// profiling cost and Error[i] the mean test RMSE at the i-th
// evaluation point.
type Curve struct {
	Strategy Strategy
	Cost     []float64
	Error    []float64
}

// MinError returns the lowest error the curve reaches.
func (c Curve) MinError() float64 {
	min := math.Inf(1)
	for _, e := range c.Error {
		if e < min {
			min = e
		}
	}
	return min
}

// CostToReach returns the first cumulative cost at which the curve's
// error drops to level or below, or +Inf if it never does.
func (c Curve) CostToReach(level float64) float64 {
	for i, e := range c.Error {
		if e <= level+1e-15 {
			return c.Cost[i]
		}
	}
	return math.Inf(1)
}

// BenchmarkCurves holds the averaged curves of every strategy for one
// kernel.
type BenchmarkCurves struct {
	Kernel *spapt.Kernel
	Curves map[Strategy]Curve
}

// buildDataset generates the kernel's corpus under the settings.
func buildDataset(k *spapt.Kernel, s Settings) (*dataset.Dataset, error) {
	sp, err := spaptspace.Wrap(k)
	if err != nil {
		return nil, err
	}
	total := s.PoolConfigs + s.TestConfigs
	return dataset.Generate(sp, dataset.Options{
		NConfigs:   total,
		NObs:       s.NObs,
		TrainCount: s.PoolConfigs,
		Seed:       s.Seed,
	})
}

// RunCurves runs every strategy Reps times on the kernel and returns
// rep-averaged learning curves.
func RunCurves(k *spapt.Kernel, s Settings, progress func(string)) (*BenchmarkCurves, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	ds, err := buildDataset(k, s)
	if err != nil {
		return nil, err
	}
	pool := make(core.SlicePool, len(ds.TrainIdx))
	for i, idx := range ds.TrainIdx {
		pool[i] = ds.Features[idx]
	}
	testX := ds.TestFeatures()
	testY := ds.TestTargets()
	eval := func(m model.Model) float64 {
		return stats.RMSE(m.PredictMeanFastBatch(testX), testY)
	}

	// Every (strategy, repetition) run is independent and seeded
	// deterministically, so they execute concurrently — sharded over
	// the same process-wide bounded pool the evaluator engines and the
	// candidate scorers use (workpool caps total workers at GOMAXPROCS
	// with an inline fallback, so the three layers of parallelism
	// cannot oversubscribe the machine or deadlock under nesting).
	// Each run drives measurement through its own evaluator engine
	// over the shared dataset source: values and §4.3 cost accounting
	// are pure in (config, ordinal), so runs share the corpus without
	// any cross-run state.
	type job struct {
		strat Strategy
		rep   int
	}
	var jobs []job
	for _, strat := range Strategies() {
		for rep := 0; rep < s.Reps; rep++ {
			jobs = append(jobs, job{strat, rep})
		}
	}
	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	var mu sync.Mutex
	report := func(msg string) {
		if progress == nil {
			return
		}
		mu.Lock()
		progress(msg)
		mu.Unlock()
	}

	src, err := evaluator.NewDatasetSource(ds)
	if err != nil {
		return nil, err
	}
	curves := make([][]core.CurvePoint, len(jobs))
	errs := make([]error, len(jobs))
	// Jobs are pulled dynamically (runs differ widely in duration
	// across strategies, so static contiguous shards would leave
	// stragglers).
	workpool.DynamicFor(workers, len(jobs), func(ji int) {
		j := jobs[ji]
		report(fmt.Sprintf("%s: %v rep %d/%d", k.Name, j.strat, j.rep+1, s.Reps))
		eng := evaluator.New(src, evaluator.Options{Workers: 1})
		learner, err := core.NewWithEvaluator(s.learnerOptions(j.strat, j.rep), pool, eng, eval)
		if err != nil {
			errs[ji] = err
			return
		}
		res, err := learner.Run(context.Background())
		if err != nil {
			errs[ji] = err
			return
		}
		if len(res.Curve) == 0 {
			errs[ji] = fmt.Errorf("experiment: empty curve for %s/%v", k.Name, j.strat)
			return
		}
		curves[ji] = res.Curve
	})

	curvesByStrat := make(map[Strategy][][]core.CurvePoint)
	for ji := range jobs {
		if errs[ji] != nil {
			return nil, errs[ji]
		}
		curvesByStrat[jobs[ji].strat] = append(curvesByStrat[jobs[ji].strat], curves[ji])
	}

	out := &BenchmarkCurves{Kernel: k, Curves: make(map[Strategy]Curve)}
	for _, strat := range Strategies() {
		runs := curvesByStrat[strat]
		points := len(runs[0])
		for _, c := range runs {
			if len(c) < points {
				points = len(c)
			}
		}
		c := Curve{
			Strategy: strat,
			Cost:     make([]float64, points),
			Error:    make([]float64, points),
		}
		for _, run := range runs {
			for i := 0; i < points; i++ {
				c.Cost[i] += run[i].Cost
				c.Error[i] += run[i].Error
			}
		}
		for i := 0; i < points; i++ {
			c.Cost[i] /= float64(len(runs))
			c.Error[i] /= float64(len(runs))
		}
		out.Curves[strat] = c
	}
	return out, nil
}
