package experiment

import (
	"fmt"

	"alic/internal/dataset"
	"alic/internal/spapt"
	"alic/internal/stats"
)

// Table2Row reproduces one line of the paper's Table 2: the spread of
// per-configuration runtime variance across the space, and of the 95%
// confidence-interval/mean ratio for 35-sample and 5-sample plans.
type Table2Row struct {
	Benchmark string
	Variance  stats.Summary
	CI35      stats.Summary
	CI5       stats.Summary
}

// Table2Result holds all rows.
type Table2Result struct {
	Rows []Table2Row
	// NConfigs and NObs record the corpus the summaries come from.
	NConfigs, NObs int
}

// Table2 generates the noise-characterisation table for the given
// kernels (nil means the whole suite). It uses the same datasets the
// learning experiments run on.
func Table2(kernels []*spapt.Kernel, s Settings, progress func(string)) (*Table2Result, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	if kernels == nil {
		kernels = spapt.Kernels()
	}
	res := &Table2Result{NConfigs: s.PoolConfigs + s.TestConfigs, NObs: s.NObs}
	for _, k := range kernels {
		if progress != nil {
			progress(fmt.Sprintf("table2: %s", k.Name))
		}
		ds, err := buildDataset(k, s)
		if err != nil {
			return nil, err
		}
		ci35, err := ds.CIOverMeanSummary(min(35, s.NObs), 0.95)
		if err != nil {
			return nil, err
		}
		ci5, err := ds.CIOverMeanSummary(5, 0.95)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Table2Row{
			Benchmark: k.Name,
			Variance:  ds.VarianceSummary(),
			CI35:      ci35,
			CI5:       ci5,
		})
	}
	return res, nil
}

// FailureRates reproduces the §4.3 observation: the fraction of
// configurations whose CI/mean ratio exceeds the given threshold at a
// given sample size ("fully 5% of examples broke the threshold").
func FailureRates(ds *dataset.Dataset, nObs int, threshold, confidence float64) (float64, error) {
	if nObs < 2 {
		return 0, fmt.Errorf("experiment: FailureRates needs nObs >= 2")
	}
	fails := 0
	for i := range ds.Configs {
		var w stats.Welford
		for j := 0; j < nObs; j++ {
			w.Add(ds.Observe(i, j))
		}
		if stats.CIOverMean(w.Mean(), w.Stddev(), w.N(), confidence) > threshold {
			fails++
		}
	}
	return float64(fails) / float64(len(ds.Configs)), nil
}
