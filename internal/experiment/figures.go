package experiment

import (
	"fmt"
	"math"

	"alic/internal/noise"
	"alic/internal/spapt"
	"alic/internal/stats"
)

// Figure1Result reproduces Figure 1 of the paper: over the mm kernel's
// i x j unroll plane, the MAE incurred with a single observation, the
// MAE with the per-point optimal sample count, and that count itself.
type Figure1Result struct {
	// Factors are the unroll factors swept on both axes.
	Factors []int
	// MAE1[i][j] is the mean absolute error of single observations
	// against the 35-observation mean.
	MAE1 [][]float64
	// MAEOpt[i][j] is the error of the mean of the optimal sample
	// count against the 35-observation mean.
	MAEOpt [][]float64
	// Counts[i][j] is the optimal (smallest adequate) sample count.
	Counts [][]int
	// FixedRuns and AdaptiveRuns compare total executions: the paper
	// reports 31,500 vs 15,131.
	FixedRuns, AdaptiveRuns int
	// Threshold is the MAE target in seconds (paper: 0.1 ms).
	Threshold float64
}

// Figure1 sweeps the mm unroll plane. maxFactor bounds the grid
// (paper: 30); nObs is the full sampling plan (paper: 35).
func Figure1(maxFactor, nObs int, threshold float64, seed uint64) (*Figure1Result, error) {
	if maxFactor < 2 || nObs < 2 || threshold <= 0 {
		return nil, fmt.Errorf("experiment: bad Figure 1 parameters")
	}
	k, err := spapt.ByName("mm")
	if err != nil {
		return nil, err
	}
	iIdx, jIdx := -1, -1
	for i, p := range k.Params {
		switch p.Name {
		case "U_i":
			iIdx = i
		case "U_j":
			jIdx = i
		}
	}
	if iIdx < 0 || jIdx < 0 {
		return nil, fmt.Errorf("experiment: mm lacks U_i/U_j parameters")
	}
	sampler, err := noise.NewSampler(k.Noise, k.Dim(), seed)
	if err != nil {
		return nil, err
	}

	res := &Figure1Result{Threshold: threshold}
	for f := 1; f <= maxFactor; f++ {
		res.Factors = append(res.Factors, f)
	}
	n := len(res.Factors)
	res.MAE1 = make([][]float64, n)
	res.MAEOpt = make([][]float64, n)
	res.Counts = make([][]int, n)

	for a := 0; a < n; a++ {
		res.MAE1[a] = make([]float64, n)
		res.MAEOpt[a] = make([]float64, n)
		res.Counts[a] = make([]int, n)
		for b := 0; b < n; b++ {
			cfg := k.BaselineConfig()
			cfg[iIdx] = res.Factors[a]
			cfg[jIdx] = res.Factors[b]
			mu, err := k.TrueRuntime(cfg)
			if err != nil {
				return nil, err
			}
			pos := k.Features(cfg)
			key := k.Key(cfg)
			ys := make([]float64, nObs)
			var w stats.Welford
			for o := 0; o < nObs; o++ {
				ys[o] = sampler.Sample(mu, pos, key, o)
				w.Add(ys[o])
			}
			mean := w.Mean()

			// MAE of single observations vs the full mean.
			mae1 := 0.0
			for _, y := range ys {
				mae1 += math.Abs(y - mean)
			}
			res.MAE1[a][b] = mae1 / float64(nObs)

			// Smallest prefix whose mean stays within the threshold.
			count := nObs
			var pw stats.Welford
			for o := 0; o < nObs; o++ {
				pw.Add(ys[o])
				if math.Abs(pw.Mean()-mean) <= threshold {
					count = o + 1
					break
				}
			}
			res.Counts[a][b] = count
			var cw stats.Welford
			for o := 0; o < count; o++ {
				cw.Add(ys[o])
			}
			res.MAEOpt[a][b] = math.Abs(cw.Mean() - mean)

			res.FixedRuns += nObs
			res.AdaptiveRuns += count
		}
	}
	return res, nil
}

// Figure2Result reproduces Figure 2: single-observation runtime against
// the unroll factor of one adi loop, exposing the plateau-climb-plateau
// structure despite the noise.
type Figure2Result struct {
	Factors  []int
	Observed []float64 // one noisy observation per factor
	TrueMean []float64 // the underlying noise-free runtimes
}

// Figure2 sweeps the unroll factor of adi's first sweep loop.
func Figure2(maxFactor int, seed uint64) (*Figure2Result, error) {
	if maxFactor < 2 {
		return nil, fmt.Errorf("experiment: bad Figure 2 parameter")
	}
	k, err := spapt.ByName("adi")
	if err != nil {
		return nil, err
	}
	uIdx := -1
	for i, p := range k.Params {
		if p.Name == "U_R_i" {
			uIdx = i
			break
		}
	}
	if uIdx < 0 {
		return nil, fmt.Errorf("experiment: adi lacks U_R_i")
	}
	sampler, err := noise.NewSampler(k.Noise, k.Dim(), seed)
	if err != nil {
		return nil, err
	}
	res := &Figure2Result{}
	for f := 1; f <= maxFactor; f++ {
		cfg := k.BaselineConfig()
		cfg[uIdx] = f
		mu, err := k.TrueRuntime(cfg)
		if err != nil {
			return nil, err
		}
		res.Factors = append(res.Factors, f)
		res.TrueMean = append(res.TrueMean, mu)
		res.Observed = append(res.Observed,
			sampler.Sample(mu, k.Features(cfg), k.Key(cfg), 0))
	}
	return res, nil
}

// Figure6Kernels lists the six benchmarks the paper plots in Figure 6.
func Figure6Kernels() []string {
	return []string{"adi", "atax", "correlation", "gemver", "jacobi", "mvt"}
}

// Figure6 runs the three sampling plans on the requested kernels (nil
// means the paper's six) and returns the averaged curves.
func Figure6(names []string, s Settings, progress func(string)) ([]*BenchmarkCurves, error) {
	if names == nil {
		names = Figure6Kernels()
	}
	var out []*BenchmarkCurves
	for _, name := range names {
		k, err := spapt.ByName(name)
		if err != nil {
			return nil, err
		}
		bc, err := RunCurves(k, s, progress)
		if err != nil {
			return nil, err
		}
		out = append(out, bc)
	}
	return out, nil
}
