package loopnest

import (
	"strings"
	"testing"
)

func TestPrintIdentity(t *testing.T) {
	n := matmulNest(64)
	out := n.Print(Transform{})
	for _, want := range []string{
		"// nest mm",
		"double A[64][64];",
		"for (i = 0; i < 64; i++)",
		"for (k = 0; k < 64; k++)",
		"C[i][j] = f(A[i][k], B[k][j], C[i][j]);  // 2 flops",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("identity print missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "unroll") || strings.Contains(out, "cache tile") {
		t.Fatalf("identity print mentions transformations:\n%s", out)
	}
}

func TestPrintTransformed(t *testing.T) {
	n := matmulNest(64)
	tr := NewTransform()
	tr.Unroll["k"] = 4
	tr.CacheTile["j"] = 16
	tr.RegTile["i"] = 2
	out := n.Print(tr)
	for _, want := range []string{
		"for (jt = 0; jt < 64; jt += 16) {  // cache tile",
		"for (j = jt; j < min(jt + 16, 64); j++)",
		"for (k = 0; k < 64; k += 4) {  // unroll 4",
		"for (i = 0; i < 64; i += 2) {  // register tile 2",
		"// body replicated 8x",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("transformed print missing %q:\n%s", want, out)
		}
	}
	// Braces balance.
	if strings.Count(out, "{") != strings.Count(out, "}") {
		t.Fatalf("unbalanced braces:\n%s", out)
	}
}

func TestPrintStencilOffsets(t *testing.T) {
	center := R("in", "i", "j")
	up := Ref{Array: "in", Index: []AffineExpr{
		{Coeffs: map[string]int{"i": 1}, Const: -1}, Var("j")}}
	n := &Nest{
		Name:  "stencil",
		Loops: []Loop{{Name: "i", Trip: 10}, {Name: "j", Trip: 10}},
		Arrays: []Array{
			{Name: "in", Dims: []int{12, 12}, ElemBytes: 8},
			{Name: "out", Dims: []int{10, 10}, ElemBytes: 8},
		},
		Body: Stmt{
			Reads:  []Ref{center, up},
			Writes: []Ref{R("out", "i", "j")},
			Flops:  2,
		},
	}
	out := n.Print(Transform{})
	if !strings.Contains(out, "in[i-1][j]") {
		t.Fatalf("offset reference not rendered:\n%s", out)
	}
}

func TestRenderAffine(t *testing.T) {
	cases := []struct {
		expr AffineExpr
		want string
	}{
		{Var("i"), "i"},
		{AffineExpr{Coeffs: map[string]int{"i": 2}}, "2*i"},
		{AffineExpr{Coeffs: map[string]int{"i": 1}, Const: 3}, "i+3"},
		{AffineExpr{Coeffs: map[string]int{"i": 1}, Const: -1}, "i-1"},
		{AffineExpr{Coeffs: map[string]int{"i": -1}}, "-i"},
		{AffineExpr{Const: 7}, "7"},
		{AffineExpr{}, "0"},
		{AffineExpr{Coeffs: map[string]int{"j": 1, "i": 1}}, "i+j"}, // sorted
	}
	for _, c := range cases {
		if got := renderAffine(c.expr); got != c.want {
			t.Fatalf("renderAffine(%+v) = %q, want %q", c.expr, got, c.want)
		}
	}
}

func TestPrintClampedStep(t *testing.T) {
	// Unroll factor above the trip count must clamp.
	n := &Nest{
		Name:   "tiny",
		Loops:  []Loop{{Name: "i", Trip: 3}},
		Arrays: []Array{{Name: "v", Dims: []int{3}, ElemBytes: 8}},
		Body: Stmt{
			Reads:  []Ref{R("v", "i")},
			Writes: []Ref{R("v", "i")},
			Flops:  1,
		},
	}
	tr := NewTransform()
	tr.Unroll["i"] = 99
	out := n.Print(tr)
	if !strings.Contains(out, "i += 3") {
		t.Fatalf("step not clamped to trip:\n%s", out)
	}
}
