package loopnest

import (
	"strings"
	"testing"
)

// matmulNest returns a classic C[i][j] += A[i][k] * B[k][j] nest.
func matmulNest(n int) *Nest {
	return &Nest{
		Name: "mm",
		Loops: []Loop{
			{Name: "i", Trip: n},
			{Name: "j", Trip: n},
			{Name: "k", Trip: n},
		},
		Arrays: []Array{
			{Name: "A", Dims: []int{n, n}, ElemBytes: 8},
			{Name: "B", Dims: []int{n, n}, ElemBytes: 8},
			{Name: "C", Dims: []int{n, n}, ElemBytes: 8},
		},
		Body: Stmt{
			Reads:  []Ref{R("A", "i", "k"), R("B", "k", "j"), R("C", "i", "j")},
			Writes: []Ref{R("C", "i", "j")},
			Flops:  2,
		},
	}
}

func TestValidateAcceptsMatmul(t *testing.T) {
	if err := matmulNest(64).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadNests(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Nest)
	}{
		{"no loops", func(n *Nest) { n.Loops = nil }},
		{"zero trip", func(n *Nest) { n.Loops[0].Trip = 0 }},
		{"dup loop", func(n *Nest) { n.Loops[1].Name = "i" }},
		{"dup array", func(n *Nest) { n.Arrays[1].Name = "A" }},
		{"zero elem", func(n *Nest) { n.Arrays[0].ElemBytes = 0 }},
		{"undeclared array", func(n *Nest) { n.Body.Reads[0].Array = "Z" }},
		{"bad arity", func(n *Nest) { n.Body.Reads[0].Index = n.Body.Reads[0].Index[:1] }},
		{"unknown loop in ref", func(n *Nest) {
			n.Body.Reads[0].Index[0] = Var("q")
		}},
		{"negative flops", func(n *Nest) { n.Body.Flops = -1 }},
	}
	for _, c := range cases {
		n := matmulNest(16)
		c.mutate(n)
		if err := n.Validate(); err == nil {
			t.Fatalf("%s: expected validation error", c.name)
		}
	}
}

func TestIterations(t *testing.T) {
	n := matmulNest(10)
	if got := n.Iterations(); got != 1000 {
		t.Fatalf("iterations = %d, want 1000", got)
	}
}

func TestLoopAndArrayLookup(t *testing.T) {
	n := matmulNest(8)
	l, err := n.Loop("k")
	if err != nil || l.Trip != 8 {
		t.Fatalf("Loop(k): %v %v", l, err)
	}
	if _, err := n.Loop("zz"); err == nil {
		t.Fatal("missing loop lookup should fail")
	}
	a, err := n.Array("B")
	if err != nil || a.ElemBytes != 8 {
		t.Fatalf("Array(B): %v %v", a, err)
	}
	if _, err := n.Array("zz"); err == nil {
		t.Fatal("missing array lookup should fail")
	}
}

func TestRefDependsOn(t *testing.T) {
	r := R("A", "i", "k")
	if !r.DependsOn("i") || !r.DependsOn("k") || r.DependsOn("j") {
		t.Fatal("DependsOn wrong")
	}
}

func TestArrayFootprint(t *testing.T) {
	a := Array{Name: "A", Dims: []int{100, 50}, ElemBytes: 8}
	if got := a.Footprint(); got != 100*50*8 {
		t.Fatalf("footprint = %d", got)
	}
}

func TestTransformAccessorsDefaults(t *testing.T) {
	var tr Transform // zero value: identity
	if tr.UnrollOf("i") != 1 || tr.RegTileOf("i") != 1 || tr.CacheTileOf("i") != 0 {
		t.Fatal("zero-value transform is not the identity")
	}
	tr = NewTransform()
	tr.Unroll["i"] = 4
	tr.CacheTile["j"] = 32
	tr.RegTile["k"] = 2
	if tr.UnrollOf("i") != 4 || tr.CacheTileOf("j") != 32 || tr.RegTileOf("k") != 2 {
		t.Fatal("accessors lost values")
	}
	if tr.UnrollOf("j") != 1 {
		t.Fatal("absent unroll should default to 1")
	}
}

func TestTransformValidate(t *testing.T) {
	n := matmulNest(16)
	tr := NewTransform()
	tr.Unroll["i"] = 4
	if err := tr.Validate(n); err != nil {
		t.Fatal(err)
	}
	tr.Unroll["nope"] = 2
	if err := tr.Validate(n); err == nil {
		t.Fatal("unknown loop accepted")
	}
	tr2 := NewTransform()
	tr2.Unroll["i"] = 0
	if err := tr2.Validate(n); err == nil {
		t.Fatal("zero unroll accepted")
	}
	tr3 := NewTransform()
	tr3.CacheTile["i"] = 0 // explicit untiled is fine
	if err := tr3.Validate(n); err != nil {
		t.Fatal(err)
	}
	tr4 := NewTransform()
	tr4.RegTile["i"] = -1
	if err := tr4.Validate(n); err == nil {
		t.Fatal("negative register tile accepted")
	}
}

func TestTransformString(t *testing.T) {
	var tr Transform
	if tr.String() != "identity" {
		t.Fatalf("identity transform renders as %q", tr.String())
	}
	tr = NewTransform()
	tr.Unroll["i"] = 4
	if s := tr.String(); !strings.Contains(s, "u(i)=4") {
		t.Fatalf("transform string %q missing unroll", s)
	}
}

func TestBodyBytesPerIter(t *testing.T) {
	n := matmulNest(8)
	// 3 reads + 1 write of float64.
	if got := n.BodyBytesPerIter(); got != 32 {
		t.Fatalf("bytes per iter = %d, want 32", got)
	}
}

func TestInnermostLoop(t *testing.T) {
	n := matmulNest(8)
	if n.InnermostLoop().Name != "k" {
		t.Fatal("innermost loop wrong")
	}
}

func TestAffineExprCoeff(t *testing.T) {
	e := AffineExpr{Coeffs: map[string]int{"i": 2}, Const: 1}
	if e.Coeff("i") != 2 || e.Coeff("j") != 0 {
		t.Fatal("Coeff wrong")
	}
	var zero AffineExpr
	if zero.Coeff("i") != 0 {
		t.Fatal("zero-value AffineExpr should have zero coeffs")
	}
}
