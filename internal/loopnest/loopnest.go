// Package loopnest defines a small loop-nest intermediate representation
// together with the three code transformations the SPAPT search spaces
// tune: loop unrolling, cache tiling, and register tiling (§4.1 of the
// paper). The representation is deliberately analytic — nests are never
// executed; they are consumed by internal/costmodel, which estimates the
// runtime of a transformed nest on a machine model.
//
// A kernel (see internal/spapt) is a sequence of nests executed one
// after another, mirroring how SPAPT kernels such as gemver and dgemv3
// decompose into several BLAS-like operations.
package loopnest

import (
	"fmt"
	"strings"
)

// Loop is one level of a rectangular loop nest.
type Loop struct {
	// Name identifies the loop for transformations ("i", "j", "k1", ...).
	Name string
	// Trip is the iteration count.
	Trip int
}

// Array describes a data array referenced by the nest.
type Array struct {
	Name string
	// Dims are the extents, outermost dimension first (row-major).
	Dims []int
	// ElemBytes is the element size in bytes (8 for float64).
	ElemBytes int
}

// Footprint returns the array's total size in bytes.
func (a Array) Footprint() int64 {
	total := int64(a.ElemBytes)
	for _, d := range a.Dims {
		total *= int64(d)
	}
	return total
}

// AffineExpr is an affine function of the loop indices:
// Const + sum_i Coeffs[loop_i] * loop_i.
type AffineExpr struct {
	Coeffs map[string]int
	Const  int
}

// Coeff returns the coefficient of the named loop (0 if absent).
func (e AffineExpr) Coeff(loop string) int {
	if e.Coeffs == nil {
		return 0
	}
	return e.Coeffs[loop]
}

// Var returns an affine expression equal to a single loop index.
func Var(loop string) AffineExpr {
	return AffineExpr{Coeffs: map[string]int{loop: 1}}
}

// Ref is a read or write of one array element with affine indices, one
// expression per array dimension.
type Ref struct {
	Array string
	Index []AffineExpr
}

// R builds a Ref whose index expressions are single loop variables —
// the common case, e.g. R("A", "i", "k") for A[i][k].
func R(array string, loops ...string) Ref {
	idx := make([]AffineExpr, len(loops))
	for i, l := range loops {
		idx[i] = Var(l)
	}
	return Ref{Array: array, Index: idx}
}

// DependsOn reports whether the reference's address varies with the
// named loop.
func (r Ref) DependsOn(loop string) bool {
	for _, e := range r.Index {
		if e.Coeff(loop) != 0 {
			return true
		}
	}
	return false
}

// Stmt is the body of the innermost loop: a set of reads, writes and
// arithmetic operations per iteration.
type Stmt struct {
	Reads  []Ref
	Writes []Ref
	// Flops is the number of floating-point operations per iteration.
	Flops int
}

// Nest is a perfect rectangular loop nest with a single statement
// (sufficient for the SPAPT kernels, which are BLAS-like).
type Nest struct {
	Name   string
	Loops  []Loop // outermost first
	Arrays []Array
	Body   Stmt
}

// Iterations returns the total number of innermost-body executions.
func (n *Nest) Iterations() int64 {
	total := int64(1)
	for _, l := range n.Loops {
		total *= int64(l.Trip)
	}
	return total
}

// Loop returns the loop with the given name, or an error.
func (n *Nest) Loop(name string) (Loop, error) {
	for _, l := range n.Loops {
		if l.Name == name {
			return l, nil
		}
	}
	return Loop{}, fmt.Errorf("loopnest: nest %q has no loop %q", n.Name, name)
}

// Array returns the named array, or an error.
func (n *Nest) Array(name string) (Array, error) {
	for _, a := range n.Arrays {
		if a.Name == name {
			return a, nil
		}
	}
	return Array{}, fmt.Errorf("loopnest: nest %q has no array %q", n.Name, name)
}

// Validate checks internal consistency: positive trip counts, array
// references that name declared arrays with matching dimensionality,
// and positive element sizes.
func (n *Nest) Validate() error {
	if len(n.Loops) == 0 {
		return fmt.Errorf("loopnest: nest %q has no loops", n.Name)
	}
	seen := make(map[string]bool)
	for _, l := range n.Loops {
		if l.Trip < 1 {
			return fmt.Errorf("loopnest: loop %q has non-positive trip %d", l.Name, l.Trip)
		}
		if seen[l.Name] {
			return fmt.Errorf("loopnest: duplicate loop name %q", l.Name)
		}
		seen[l.Name] = true
	}
	arrays := make(map[string]Array)
	for _, a := range n.Arrays {
		if a.ElemBytes < 1 {
			return fmt.Errorf("loopnest: array %q has non-positive element size", a.Name)
		}
		if _, dup := arrays[a.Name]; dup {
			return fmt.Errorf("loopnest: duplicate array name %q", a.Name)
		}
		arrays[a.Name] = a
	}
	check := func(refs []Ref, kind string) error {
		for _, r := range refs {
			a, ok := arrays[r.Array]
			if !ok {
				return fmt.Errorf("loopnest: %s ref to undeclared array %q", kind, r.Array)
			}
			if len(r.Index) != len(a.Dims) {
				return fmt.Errorf("loopnest: %s ref to %q has %d indices, array has %d dims",
					kind, r.Array, len(r.Index), len(a.Dims))
			}
			for _, e := range r.Index {
				for loop := range e.Coeffs {
					if !seen[loop] {
						return fmt.Errorf("loopnest: ref to %q uses unknown loop %q", r.Array, loop)
					}
				}
			}
		}
		return nil
	}
	if err := check(n.Body.Reads, "read"); err != nil {
		return err
	}
	if err := check(n.Body.Writes, "write"); err != nil {
		return err
	}
	if n.Body.Flops < 0 {
		return fmt.Errorf("loopnest: negative flops")
	}
	return nil
}

// Transform is a transformation recipe for one nest. Map keys are loop
// names; absent entries mean "no transformation" for that loop.
type Transform struct {
	// Unroll replicates the loop body, reducing per-iteration loop
	// overhead at the price of code growth and register pressure.
	Unroll map[string]int
	// CacheTile strip-mines the loop with the given tile size so the
	// per-tile working set can fit in cache.
	CacheTile map[string]int
	// RegTile applies unroll-and-jam with the given factor: values of
	// references invariant in the tiled loop are kept in registers.
	RegTile map[string]int
}

// NewTransform returns an empty (identity) transform.
func NewTransform() Transform {
	return Transform{
		Unroll:    make(map[string]int),
		CacheTile: make(map[string]int),
		RegTile:   make(map[string]int),
	}
}

// UnrollOf returns the effective unroll factor for a loop (>= 1).
func (t Transform) UnrollOf(loop string) int { return factorOf(t.Unroll, loop) }

// CacheTileOf returns the effective cache-tile size for a loop
// (0 means untiled).
func (t Transform) CacheTileOf(loop string) int {
	if t.CacheTile == nil {
		return 0
	}
	return t.CacheTile[loop]
}

// RegTileOf returns the effective register-tile factor for a loop (>= 1).
func (t Transform) RegTileOf(loop string) int { return factorOf(t.RegTile, loop) }

func factorOf(m map[string]int, loop string) int {
	if m == nil {
		return 1
	}
	if f, ok := m[loop]; ok && f >= 1 {
		return f
	}
	return 1
}

// Validate checks the transform against the nest: every named loop
// must exist, unroll and register-tile factors must be >= 1, cache
// tiles must be 0 (untiled) or >= 1. Factors larger than the trip
// count are legal (the compiler would clamp them) but flagged here so
// search spaces stay meaningful.
func (t Transform) Validate(n *Nest) error {
	checkLoops := func(m map[string]int, kind string, allowZero bool) error {
		for name, f := range m {
			if _, err := n.Loop(name); err != nil {
				return fmt.Errorf("loopnest: %s names unknown loop %q in nest %q", kind, name, n.Name)
			}
			min := 1
			if allowZero {
				min = 0
			}
			if f < min {
				return fmt.Errorf("loopnest: %s factor %d for loop %q out of range", kind, f, name)
			}
		}
		return nil
	}
	if err := checkLoops(t.Unroll, "unroll", false); err != nil {
		return err
	}
	if err := checkLoops(t.CacheTile, "cache tile", true); err != nil {
		return err
	}
	return checkLoops(t.RegTile, "register tile", false)
}

// String renders the transform compactly for logs.
func (t Transform) String() string {
	var parts []string
	for _, kv := range []struct {
		tag string
		m   map[string]int
	}{{"u", t.Unroll}, {"ct", t.CacheTile}, {"rt", t.RegTile}} {
		for name, f := range kv.m {
			if f > 1 || (kv.tag == "ct" && f > 0) {
				parts = append(parts, fmt.Sprintf("%s(%s)=%d", kv.tag, name, f))
			}
		}
	}
	if len(parts) == 0 {
		return "identity"
	}
	return strings.Join(parts, " ")
}

// BodyBytesPerIter sums the bytes touched by one body execution.
func (n *Nest) BodyBytesPerIter() int {
	total := 0
	count := func(refs []Ref) {
		for _, r := range refs {
			if a, err := n.Array(r.Array); err == nil {
				total += a.ElemBytes
			}
		}
	}
	count(n.Body.Reads)
	count(n.Body.Writes)
	return total
}

// InnermostLoop returns the innermost loop.
func (n *Nest) InnermostLoop() Loop { return n.Loops[len(n.Loops)-1] }
