package loopnest

import (
	"fmt"
	"sort"
	"strings"
)

// Print renders the nest as pseudo-C, applying the transform's loop
// structure: cache-tiled loops appear as strip-mine pairs, unrolled and
// register-tiled loops carry step and replication annotations. The
// output is for humans (docs, debugging, golden tests) — it is never
// executed.
func (n *Nest) Print(t Transform) string {
	var b strings.Builder
	fmt.Fprintf(&b, "// nest %s\n", n.Name)
	for _, a := range n.Arrays {
		dims := make([]string, len(a.Dims))
		for i, d := range a.Dims {
			dims[i] = fmt.Sprintf("[%d]", d)
		}
		fmt.Fprintf(&b, "double %s%s;\n", a.Name, strings.Join(dims, ""))
	}

	indent := 0
	writeLine := func(format string, args ...interface{}) {
		b.WriteString(strings.Repeat("  ", indent))
		fmt.Fprintf(&b, format, args...)
		b.WriteByte('\n')
	}

	// Tile loops first (outer strip loops), in nest order.
	for _, l := range n.Loops {
		if tile := t.CacheTileOf(l.Name); tile >= 1 && tile < l.Trip {
			writeLine("for (%st = 0; %st < %d; %st += %d) {  // cache tile",
				l.Name, l.Name, l.Trip, l.Name, tile)
			indent++
		}
	}
	// Point loops.
	for _, l := range n.Loops {
		step := t.UnrollOf(l.Name) * t.RegTileOf(l.Name)
		if step > l.Trip {
			step = l.Trip
		}
		lo, hi := "0", fmt.Sprintf("%d", l.Trip)
		if tile := t.CacheTileOf(l.Name); tile >= 1 && tile < l.Trip {
			lo = l.Name + "t"
			hi = fmt.Sprintf("min(%st + %d, %d)", l.Name, tile, l.Trip)
		}
		annot := ""
		if u := t.UnrollOf(l.Name); u > 1 {
			annot += fmt.Sprintf("  // unroll %d", u)
		}
		if rt := t.RegTileOf(l.Name); rt > 1 {
			annot += fmt.Sprintf("  // register tile %d", rt)
		}
		if step > 1 {
			writeLine("for (%s = %s; %s < %s; %s += %d) {%s",
				l.Name, lo, l.Name, hi, l.Name, step, annot)
		} else {
			writeLine("for (%s = %s; %s < %s; %s++) {%s",
				l.Name, lo, l.Name, hi, l.Name, annot)
		}
		indent++
	}

	// Body: one statement per replication is implied; print the base
	// statement once with a replication note.
	copies := 1
	for _, l := range n.Loops {
		step := t.UnrollOf(l.Name) * t.RegTileOf(l.Name)
		if step > l.Trip {
			step = l.Trip
		}
		copies *= step
	}
	if copies > 1 {
		writeLine("// body replicated %dx by unroll/register tiling", copies)
	}
	writeLine("%s", n.renderBody())

	for indent > 0 {
		indent--
		writeLine("}")
	}
	return b.String()
}

// renderBody formats the statement as "writes = f(reads); // N flops".
func (n *Nest) renderBody() string {
	var writes, reads []string
	for _, r := range n.Body.Writes {
		writes = append(writes, renderRef(r))
	}
	for _, r := range n.Body.Reads {
		reads = append(reads, renderRef(r))
	}
	lhs := strings.Join(writes, ", ")
	if lhs == "" {
		lhs = "_"
	}
	return fmt.Sprintf("%s = f(%s);  // %d flops",
		lhs, strings.Join(reads, ", "), n.Body.Flops)
}

// renderRef formats A[i][k+1] style references.
func renderRef(r Ref) string {
	var b strings.Builder
	b.WriteString(r.Array)
	for _, e := range r.Index {
		b.WriteByte('[')
		b.WriteString(renderAffine(e))
		b.WriteByte(']')
	}
	return b.String()
}

// renderAffine formats an affine expression with deterministic term
// order.
func renderAffine(e AffineExpr) string {
	var loops []string
	for l, c := range e.Coeffs {
		if c != 0 {
			loops = append(loops, l)
		}
	}
	sort.Strings(loops)
	var parts []string
	for _, l := range loops {
		c := e.Coeffs[l]
		switch c {
		case 1:
			parts = append(parts, l)
		case -1:
			parts = append(parts, "-"+l)
		default:
			parts = append(parts, fmt.Sprintf("%d*%s", c, l))
		}
	}
	if e.Const != 0 || len(parts) == 0 {
		parts = append(parts, fmt.Sprintf("%d", e.Const))
	}
	out := strings.Join(parts, "+")
	return strings.ReplaceAll(out, "+-", "-")
}
