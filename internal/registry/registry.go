// Package registry provides the generic name registry behind the
// pluggable learner pieces — model backends, acquisition heuristics,
// and sampling plans all share this one implementation.
package registry

import (
	"fmt"
	"sort"
	"sync"
)

// Registry is a concurrency-safe name → value table.
type Registry[T any] struct {
	prefix   string // package prefix for error text, e.g. "core"
	sentinel error  // wrapped into lookup failures for errors.Is
	mu       sync.RWMutex
	entries  map[string]T
}

// New returns an empty registry whose lookup failures read
// "<prefix>: <sentinel> <name> (have [...])" and match sentinel with
// errors.Is.
func New[T any](prefix string, sentinel error) *Registry[T] {
	return &Registry[T]{prefix: prefix, sentinel: sentinel, entries: make(map[string]T)}
}

// Register stores v under name, replacing any existing entry. It
// panics on an empty name or nil value.
func (r *Registry[T]) Register(name string, v T) {
	if name == "" || any(v) == nil {
		panic(r.prefix + ": Register with nil value or empty name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.entries[name] = v
}

// Lookup returns the entry for name, or an error wrapping the
// registry's sentinel and listing the available names.
func (r *Registry[T]) Lookup(name string) (T, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	v, ok := r.entries[name]
	if !ok {
		return v, fmt.Errorf("%s: %w %q (have %v)", r.prefix, r.sentinel, name, r.namesLocked())
	}
	return v, nil
}

// Names lists the registered names in sorted order.
func (r *Registry[T]) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.namesLocked()
}

func (r *Registry[T]) namesLocked() []string {
	out := make([]string, 0, len(r.entries))
	for name := range r.entries {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
