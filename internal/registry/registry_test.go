package registry

import (
	"errors"
	"testing"
)

func TestRegistry(t *testing.T) {
	sentinel := errors.New("unknown widget")
	r := New[int]("widgets", sentinel)
	if got := r.Names(); len(got) != 0 {
		t.Fatalf("fresh registry has names %v", got)
	}
	r.Register("b", 2)
	r.Register("a", 1)
	if got := r.Names(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("names = %v, want sorted [a b]", got)
	}
	v, err := r.Lookup("a")
	if err != nil || v != 1 {
		t.Fatalf("Lookup(a) = %v, %v", v, err)
	}
	r.Register("a", 3) // replacement wins
	if v, _ := r.Lookup("a"); v != 3 {
		t.Fatalf("replacement lookup = %v, want 3", v)
	}
	_, err = r.Lookup("zzz")
	if !errors.Is(err, sentinel) {
		t.Fatalf("missing lookup error = %v, want wrapped sentinel", err)
	}
}

func TestRegisterEmptyNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New[int]("widgets", errors.New("x")).Register("", 1)
}
