package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"alic/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestCholeskyKnown(t *testing.T) {
	l, err := Cholesky([][]float64{{4, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(l[0][0], 2, 1e-12) || !almostEq(l[1][0], 1, 1e-12) ||
		!almostEq(l[1][1], math.Sqrt(2), 1e-12) {
		t.Fatalf("factor %v", l)
	}
	if _, err := Cholesky([][]float64{{1, 2}, {2, 1}}); err == nil {
		t.Fatal("indefinite accepted")
	}
}

func TestCholSolveRandomSPD(t *testing.T) {
	r := rng.New(3)
	if err := quick.Check(func(seed uint16) bool {
		n := int(seed%5) + 2
		// Build SPD A = B B^T + I.
		b := make([][]float64, n)
		for i := range b {
			b[i] = make([]float64, n)
			for j := range b[i] {
				b[i][j] = r.NormMS(0, 1)
			}
		}
		a := make([][]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				for k := 0; k < n; k++ {
					a[i][j] += b[i][k] * b[j][k]
				}
				if i == j {
					a[i][j]++
				}
			}
		}
		rhs := make([]float64, n)
		for i := range rhs {
			rhs[i] = r.NormMS(0, 2)
		}
		l, err := Cholesky(a)
		if err != nil {
			return false
		}
		x := CholSolve(l, rhs)
		// Check A x = rhs.
		for i := 0; i < n; i++ {
			got := 0.0
			for j := 0; j < n; j++ {
				got += a[i][j] * x[j]
			}
			if !almostEq(got, rhs[i], 1e-7) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLogDet(t *testing.T) {
	// det([[4,2],[2,3]]) = 8.
	l, _ := Cholesky([][]float64{{4, 2}, {2, 3}})
	if got := LogDetFromChol(l); !almostEq(got, math.Log(8), 1e-12) {
		t.Fatalf("log det %v, want %v", got, math.Log(8))
	}
}

func TestQuadForm(t *testing.T) {
	// A = 2I: x^T A^{-1} x = |x|^2 / 2.
	l, _ := Cholesky([][]float64{{2, 0}, {0, 2}})
	x := []float64{3, 4}
	if got := QuadForm(l, x); !almostEq(got, 12.5, 1e-12) {
		t.Fatalf("quad form %v, want 12.5", got)
	}
}

func TestForwardBackSolve(t *testing.T) {
	l := [][]float64{{2, 0}, {1, 3}}
	v := ForwardSolve(l, []float64{4, 7})
	if !almostEq(v[0], 2, 1e-12) || !almostEq(v[1], 5.0/3.0, 1e-12) {
		t.Fatalf("forward %v", v)
	}
	x := BackSolve(l, []float64{4, 6})
	// L^T x = b: [2 1; 0 3] x = [4 6] -> x1 = 2, x0 = (4-2)/2 = 1.
	if !almostEq(x[1], 2, 1e-12) || !almostEq(x[0], 1, 1e-12) {
		t.Fatalf("back %v", x)
	}
}

func TestDot(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("dot wrong")
	}
}
