// Package linalg provides the small dense linear-algebra kernels the
// Bayesian models need: Cholesky factorisation of symmetric
// positive-definite matrices, triangular solves, and log-determinants.
// Matrices are [][]float64, row-major, and small (tens of rows), so
// clarity beats blocking.
package linalg

import (
	"fmt"
	"math"
)

// Cholesky returns the lower-triangular factor L with A = L L^T. It
// fails if A is not positive definite.
func Cholesky(a [][]float64) ([][]float64, error) {
	n := len(a)
	l := make([][]float64, n)
	for i := range l {
		l[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a[i][j]
			for k := 0; k < j; k++ {
				sum -= l[i][k] * l[j][k]
			}
			if i == j {
				if sum <= 0 {
					return nil, fmt.Errorf("linalg: not positive definite at row %d", i)
				}
				l[i][i] = math.Sqrt(sum)
			} else {
				l[i][j] = sum / l[j][j]
			}
		}
	}
	return l, nil
}

// ForwardSolve solves L v = b for lower-triangular L.
func ForwardSolve(l [][]float64, b []float64) []float64 {
	n := len(b)
	v := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l[i][k] * v[k]
		}
		v[i] = sum / l[i][i]
	}
	return v
}

// BackSolve solves L^T x = b for lower-triangular L.
func BackSolve(l [][]float64, b []float64) []float64 {
	n := len(b)
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := b[i]
		for k := i + 1; k < n; k++ {
			sum -= l[k][i] * x[k]
		}
		x[i] = sum / l[i][i]
	}
	return x
}

// CholSolve solves (L L^T) x = b.
func CholSolve(l [][]float64, b []float64) []float64 {
	return BackSolve(l, ForwardSolve(l, b))
}

// LogDetFromChol returns ln det(A) given A's Cholesky factor.
func LogDetFromChol(l [][]float64) float64 {
	sum := 0.0
	for i := range l {
		sum += math.Log(l[i][i])
	}
	return 2 * sum
}

// Dot returns the inner product of two vectors.
func Dot(a, b []float64) float64 {
	sum := 0.0
	for i := range a {
		sum += a[i] * b[i]
	}
	return sum
}

// QuadForm returns x^T A^{-1} x given A's Cholesky factor L: it solves
// L v = x and returns v.v.
func QuadForm(l [][]float64, x []float64) float64 {
	v := ForwardSolve(l, x)
	return Dot(v, v)
}

// ForwardSolveInto is ForwardSolve with a caller-owned result vector
// (len(b); must not alias b), so hot loops can run allocation-free.
func ForwardSolveInto(l [][]float64, b, dst []float64) []float64 {
	n := len(b)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l[i][k] * dst[k]
		}
		dst[i] = sum / l[i][i]
	}
	return dst[:n]
}

// QuadFormInto is QuadForm with caller-owned solve scratch (len(x);
// must not alias x).
func QuadFormInto(l [][]float64, x, scratch []float64) float64 {
	v := ForwardSolveInto(l, x, scratch)
	return Dot(v, v)
}
