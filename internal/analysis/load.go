package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// The loader type-checks packages with no dependency beyond the
// standard library. Module packages are enumerated with `go list
// -json -deps` and typed from source in dependency order; standard
// library imports are resolved by go/importer's "source" importer
// (which also needs no pre-built export data, so the loader works in
// hermetic build environments). Test fixtures (testdata/src trees, in
// the GOPATH layout golang.org/x/tools/go/analysis/analysistest uses)
// are resolved by directory lookup instead of go list.

// A Package is one loaded, type-checked unit of analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	// TestFiles marks which Files are _test.go files (the in-package
	// test variant is analyzed as one package with them included).
	TestFiles map[*ast.File]bool
	Types     *types.Package
	Info      *types.Info
}

// LoadConfig configures a Loader.
type LoadConfig struct {
	// Dir is the directory go list runs in (module mode). Empty means
	// the current directory.
	Dir string
	// SrcDirs are testdata/src-style roots; when non-empty the loader
	// is in fixture mode and import paths resolve to SrcDirs[i]/path.
	SrcDirs []string
	// Tests includes each package's _test.go files: in-package test
	// files join the package's analysis unit, external (xtest) files
	// form an extra "<path>_test" unit.
	Tests bool
}

// A Loader memoizes type-checked packages across Load calls.
type Loader struct {
	Fset    *token.FileSet
	cfg     LoadConfig
	meta    map[string]*listPkg
	order   []string // module packages in dependency order
	pkgs    map[string]*types.Package
	bases   map[string]*Package
	loading map[string]bool
	std     types.ImporterFrom
}

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	ImportPath   string
	Dir          string
	Name         string
	Standard     bool
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
}

// NewLoader returns a Loader for the given configuration.
func NewLoader(cfg LoadConfig) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		cfg:     cfg,
		pkgs:    make(map[string]*types.Package),
		loading: make(map[string]bool),
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}
}

// Load type-checks and returns the packages named by patterns: go
// list patterns in module mode, import paths under SrcDirs in fixture
// mode. Packages are returned in deterministic (go list, or given)
// order.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(l.cfg.SrcDirs) > 0 {
		var out []*Package
		for _, p := range patterns {
			pkg, err := l.loadFixture(p)
			if err != nil {
				return nil, err
			}
			out = append(out, pkg)
		}
		return out, nil
	}
	return l.loadModule(patterns)
}

func (l *Loader) loadModule(patterns []string) ([]*Package, error) {
	if l.meta == nil {
		if err := l.listModule(); err != nil {
			return nil, err
		}
	}
	named, err := l.goList(append([]string{"list", "--"}, patterns...))
	if err != nil {
		return nil, err
	}
	var namedPaths []string
	for _, p := range named {
		namedPaths = append(namedPaths, p.ImportPath)
	}
	// Base-type every module package first, in dependency order: with
	// the full graph in the importer map, test-variant imports can
	// never recurse into a cycle.
	for _, path := range l.order {
		if _, err := l.ensureBase(path); err != nil {
			return nil, err
		}
	}
	var out []*Package
	for _, path := range namedPaths {
		lp := l.meta[path]
		if lp == nil {
			return nil, fmt.Errorf("analysis: pattern matched %s but module listing lacks it", path)
		}
		switch {
		case l.cfg.Tests && len(lp.TestGoFiles) > 0:
			files := append(append([]string{}, lp.GoFiles...), lp.TestGoFiles...)
			pkg, err := l.typeCheck(path, lp.Dir, files, false)
			if err != nil {
				return nil, err
			}
			out = append(out, pkg)
		default:
			pkg, err := l.ensureBase(path)
			if err != nil {
				return nil, err
			}
			out = append(out, pkg)
		}
		if l.cfg.Tests && len(lp.XTestGoFiles) > 0 {
			pkg, err := l.typeCheck(path+"_test", lp.Dir, lp.XTestGoFiles, false)
			if err != nil {
				return nil, err
			}
			out = append(out, pkg)
		}
	}
	return out, nil
}

// listModule runs `go list -json -deps ./...` once over the whole
// module, recording metadata and dependency order for every module
// package (standard-library entries are dropped: the source importer
// owns those).
func (l *Loader) listModule() error {
	pkgs, err := l.goList([]string{"list", "-json", "-deps", "./..."})
	if err != nil {
		return err
	}
	l.meta = make(map[string]*listPkg, len(pkgs))
	for _, p := range pkgs {
		if p.Standard {
			continue
		}
		l.meta[p.ImportPath] = p
		l.order = append(l.order, p.ImportPath)
	}
	return nil
}

func (l *Loader) goList(args []string) ([]*listPkg, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = l.cfg.Dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	if !bytes.Contains(stdout.Bytes(), []byte("{")) {
		// Plain (non-json) listing: one import path per line.
		var out []*listPkg
		for _, line := range strings.Fields(stdout.String()) {
			out = append(out, &listPkg{ImportPath: line})
		}
		return out, nil
	}
	dec := json.NewDecoder(&stdout)
	var out []*listPkg
	for dec.More() {
		p := new(listPkg)
		if err := dec.Decode(p); err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		out = append(out, p)
	}
	return out, nil
}

// ensureBase type-checks the non-test variant of a module package and
// registers it for import resolution.
func (l *Loader) ensureBase(path string) (*Package, error) {
	lp := l.meta[path]
	if lp == nil {
		return nil, fmt.Errorf("analysis: unknown module package %s", path)
	}
	if cached, ok := l.baseCache()[path]; ok {
		return cached, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)
	pkg, err := l.typeCheck(path, lp.Dir, lp.GoFiles, true)
	if err != nil {
		return nil, err
	}
	l.baseCache()[path] = pkg
	return pkg, nil
}

// baseCache lazily allocates the base-variant Package cache.
func (l *Loader) baseCache() map[string]*Package {
	if l.bases == nil {
		l.bases = make(map[string]*Package)
	}
	return l.bases
}

// loadFixture type-checks a testdata package by import path.
func (l *Loader) loadFixture(path string) (*Package, error) {
	if cached, ok := l.baseCache()[path]; ok {
		return cached, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	dir, files, err := l.findFixture(path)
	if err != nil {
		return nil, err
	}
	l.loading[path] = true
	defer delete(l.loading, path)
	pkg, err := l.typeCheck(path, dir, files, true)
	if err != nil {
		return nil, err
	}
	l.baseCache()[path] = pkg
	return pkg, nil
}

func (l *Loader) findFixture(path string) (string, []string, error) {
	for _, root := range l.cfg.SrcDirs {
		dir := filepath.Join(root, filepath.FromSlash(path))
		ents, err := os.ReadDir(dir)
		if err != nil {
			continue
		}
		var files []string
		for _, e := range ents {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, "_") || strings.HasPrefix(name, ".") {
				continue
			}
			files = append(files, name)
		}
		sort.Strings(files)
		if len(files) == 0 {
			continue
		}
		return dir, files, nil
	}
	return "", nil, fmt.Errorf("analysis: fixture package %s not found under %v", path, l.cfg.SrcDirs)
}

// typeCheck parses and type-checks one set of files as a package. When
// register is set, the resulting types.Package resolves future imports
// of the path.
func (l *Loader) typeCheck(path, dir string, filenames []string, register bool) (*Package, error) {
	var files []*ast.File
	testFiles := make(map[*ast.File]bool)
	for _, name := range filenames {
		full := filepath.Join(dir, name)
		f, err := parser.ParseFile(l.Fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		files = append(files, f)
		if strings.HasSuffix(name, "_test.go") {
			testFiles[f] = true
		}
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tp, _ := conf.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		var b strings.Builder
		for i, e := range typeErrs {
			if i == 8 {
				fmt.Fprintf(&b, "\n\t... and %d more", len(typeErrs)-i)
				break
			}
			fmt.Fprintf(&b, "\n\t%v", e)
		}
		return nil, fmt.Errorf("analysis: type-checking %s:%s", path, b.String())
	}
	if register {
		l.pkgs[path] = tp
	}
	return &Package{
		ImportPath: path,
		Dir:        dir,
		Fset:       l.Fset,
		Files:      files,
		TestFiles:  testFiles,
		Types:      tp,
		Info:       info,
	}, nil
}

// loaderImporter adapts the Loader to types.ImporterFrom: module and
// fixture packages resolve from the loader, everything else falls
// through to the standard library's source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, "", 0)
}

func (li *loaderImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	l := (*Loader)(li)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if tp, ok := l.pkgs[path]; ok {
		return tp, nil
	}
	if len(l.cfg.SrcDirs) > 0 {
		if _, _, err := l.findFixture(path); err == nil {
			pkg, err := l.loadFixture(path)
			if err != nil {
				return nil, err
			}
			return pkg.Types, nil
		}
	}
	if l.meta != nil {
		if _, ok := l.meta[path]; ok {
			pkg, err := l.ensureBase(path)
			if err != nil {
				return nil, err
			}
			return pkg.Types, nil
		}
	}
	return l.std.ImportFrom(path, srcDir, mode)
}
