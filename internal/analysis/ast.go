package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Shared syntax helpers for the passes.

// RootIdent walks an lvalue/selector chain (x, x.f, x[i], (*x).f,
// &x.f, x.f[i].g …) to its leftmost identifier, or nil when the chain
// roots in something else (a call, a literal).
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.IndexListExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		default:
			return nil
		}
	}
}

// ObjOf resolves an identifier to its object via Uses or Defs.
func ObjOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// DeclaredWithin reports whether obj's declaration lies inside the
// [pos, end) span. Objects that cannot be resolved are treated as
// declared outside (the conservative answer for accumulation checks).
func DeclaredWithin(obj types.Object, pos, end token.Pos) bool {
	if obj == nil {
		return false
	}
	return obj.Pos() >= pos && obj.Pos() < end
}

// CalleeFunc resolves a call expression to the *types.Func it invokes
// (package function or method), or nil for builtins, conversions and
// dynamic calls through non-selector expressions.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		} else if sel, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
			id = sel.Sel
		}
	case *ast.IndexListExpr:
		if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		} else if sel, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
			id = sel.Sel
		}
	}
	if id == nil {
		return nil
	}
	fn, _ := ObjOf(info, id).(*types.Func)
	return fn
}

// IsBuiltin reports whether the call invokes the named builtin
// (make, new, append, …).
func IsBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = ObjOf(info, id).(*types.Builtin)
	return ok
}

// MentionsAny reports whether the expression references any of the
// given objects.
func MentionsAny(info *types.Info, e ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if o := ObjOf(info, id); o != nil && objs[o] {
				found = true
			}
		}
		return true
	})
	return found
}
