package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// A Finding is one diagnostic after suppression processing.
type Finding struct {
	Analyzer   string
	Pos        token.Position
	Message    string
	Suppressed bool
	// Reason is the //alic:allow justification when Suppressed.
	Reason string
}

// AllowAnalyzerName is the pseudo-analyzer findings about malformed
// //alic:allow comments are reported under. It cannot itself be
// suppressed, so broken suppressions never hide silently.
const AllowAnalyzerName = "allow"

// RunAnalyzers applies every analyzer to every package (in the given
// order), resolves //alic:allow suppressions, and returns all
// findings sorted by position. A suppression comment matches a
// finding when it names the finding's analyzer and sits on the same
// line or the line immediately above.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	facts := make(map[string]interface{})
	var findings []Finding
	for _, pkg := range pkgs {
		// file → line → allows, over every file of the unit (test
		// files included: suppressions are valid anywhere).
		allows := make(map[string]map[int][]Allow)
		for _, f := range pkg.Files {
			for _, a := range parseAllows(pkg.Fset, f, known) {
				pos := pkg.Fset.Position(a.Pos)
				if a.Malformed != "" {
					findings = append(findings, Finding{
						Analyzer: AllowAnalyzerName,
						Pos:      pos,
						Message:  "malformed //alic:allow comment: " + a.Malformed,
					})
					continue
				}
				byLine := allows[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]Allow)
					allows[pos.Filename] = byLine
				}
				byLine[a.Line] = append(byLine[a.Line], a)
			}
		}
		for _, a := range analyzers {
			var diags []Diagnostic
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				TestFiles: pkg.TestFiles,
				Facts:     facts,
				Report:    func(d Diagnostic) { diags = append(diags, d) },
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %v", a.Name, pkg.ImportPath, err)
			}
			for _, d := range diags {
				pos := pkg.Fset.Position(d.Pos)
				f := Finding{Analyzer: a.Name, Pos: pos, Message: d.Message}
				if byLine := allows[pos.Filename]; byLine != nil {
					for _, line := range []int{pos.Line, pos.Line - 1} {
						for _, al := range byLine[line] {
							if al.Analyzer == a.Name {
								f.Suppressed = true
								f.Reason = al.Reason
							}
						}
						if f.Suppressed {
							break
						}
					}
				}
				findings = append(findings, f)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}
