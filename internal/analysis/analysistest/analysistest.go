// Package analysistest runs an analyzer over GOPATH-layout testdata
// fixtures and checks its findings against expectation comments, in
// the style of golang.org/x/tools/go/analysis/analysistest:
//
//	x := m[k] // want "float accumulation"
//	t := time.Now() //alic:allow detfloat test fixture // want-suppressed "time.Now"
//
// "// want" lines carry one or more quoted regexps matched (in order)
// against the unsuppressed findings on that line; "// want-suppressed"
// pins that a finding fired and an //alic:allow comment suppressed
// it. Every finding must match an expectation and every expectation
// must be matched, so fixtures are exact.
package analysistest

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"alic/internal/analysis"
)

// One loader per process: the stdlib source-importing type-checker is
// the expensive part, and fixtures can share it.
var (
	mu      sync.Mutex
	loaders = make(map[string]*analysis.Loader)
)

func loaderFor(srcDir string) *analysis.Loader {
	mu.Lock()
	defer mu.Unlock()
	if l, ok := loaders[srcDir]; ok {
		return l
	}
	l := analysis.NewLoader(analysis.LoadConfig{SrcDirs: []string{srcDir}})
	loaders[srcDir] = l
	return l
}

// TestData returns the test's testdata directory.
func TestData(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	return abs
}

// Run loads each fixture package from testdata/src/<pkg>, applies the
// analyzer through the suppression-aware driver in one shared run
// (so module-wide facts, e.g. duplicate registry names, accumulate
// across the listed packages in order), and checks expectations.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	ld := loaderFor(filepath.Join(testdata, "src"))
	loaded, err := ld.Load(pkgs...)
	if err != nil {
		t.Fatalf("analysistest: loading %v: %v", pkgs, err)
	}
	findings, err := analysis.RunAnalyzers(loaded, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("analysistest: running %s: %v", a.Name, err)
	}
	exps := parseExpectations(t, loaded)
	for _, f := range findings {
		key := lineKey{file: f.Pos.Filename, line: f.Pos.Line}
		if !consume(exps[key], f) {
			t.Errorf("%s:%d: unexpected %s diagnostic (suppressed=%v): %s",
				f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Suppressed, f.Message)
		}
	}
	for key, list := range exps {
		for _, e := range list {
			if !e.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q (suppressed=%v) did not fire",
					key.file, key.line, e.re.String(), e.suppressed)
			}
		}
	}
}

type lineKey struct {
	file string
	line int
}

type expectation struct {
	re         *regexp.Regexp
	suppressed bool
	matched    bool
}

func consume(list []*expectation, f analysis.Finding) bool {
	for _, e := range list {
		if e.matched || e.suppressed != f.Suppressed {
			continue
		}
		if e.re.MatchString(f.Message) {
			e.matched = true
			return true
		}
	}
	return false
}

var wantRE = regexp.MustCompile(`//\s*(want|want-suppressed)\s+(.*)$`)

func parseExpectations(t *testing.T, pkgs []*analysis.Package) map[lineKey][]*expectation {
	t.Helper()
	exps := make(map[lineKey][]*expectation)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, g := range f.Comments {
				for _, c := range g.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, pat := range splitPatterns(t, pos.String(), m[2]) {
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
						}
						key := lineKey{file: pos.Filename, line: pos.Line}
						exps[key] = append(exps[key], &expectation{re: re, suppressed: m[1] == "want-suppressed"})
					}
				}
			}
		}
	}
	return exps
}

// splitPatterns parses the quoted regexp list of a want comment:
// "a" "b" or `a` `b`.
func splitPatterns(t *testing.T, pos, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := 1
			for end < len(s) && (s[end] != '"' || s[end-1] == '\\') {
				end++
			}
			if end == len(s) {
				t.Fatalf("%s: unterminated want pattern: %s", pos, s)
			}
			pat, err := strconv.Unquote(s[:end+1])
			if err != nil {
				t.Fatalf("%s: bad want pattern %s: %v", pos, s[:end+1], err)
			}
			out = append(out, pat)
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.Index(s[1:], "`")
			if end < 0 {
				t.Fatalf("%s: unterminated want pattern: %s", pos, s)
			}
			out = append(out, s[1:end+1])
			s = strings.TrimSpace(s[end+2:])
		default:
			t.Fatalf("%s: want patterns must be quoted: %s", pos, s)
		}
	}
	if len(out) == 0 {
		t.Fatalf("%s: want comment with no patterns", pos)
	}
	return out
}
