// Package analysis is a self-contained micro-framework mirroring the
// shape of golang.org/x/tools/go/analysis — Analyzer, Pass, Diagnostic
// and a package loader/driver — built entirely on the standard
// library's go/ast, go/types and go/importer. The module pins three
// load-bearing contracts (bit-determinism, zero-allocation kernels,
// registry-mediated pluggability) with runtime tests; the analyzers in
// internal/analysis/passes move those contracts to compile time. The
// x/tools dependency is deliberately absent: the module is
// zero-dependency and must build in hermetic environments, so the
// framework re-implements the tiny slice of the upstream API the
// passes need. If the module ever grows a vendored x/tools, each pass
// ports over mechanically (the Analyzer/Pass field names match).
//
// Contracts live next to the code they govern, as source annotations:
//
//	//alic:deterministic        — package marker: the detfloat pass
//	                              enforces scheduling-order freedom
//	//alic:noalloc              — function marker: the noalloc pass
//	                              flags allocation-introducing syntax
//	//alic:allow <pass> <why>   — suppresses that pass's findings on
//	                              the same or the following line
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in findings, -json output and
	// //alic:allow suppression comments.
	Name string
	// Doc is the one-paragraph contract statement shown by -help.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) (interface{}, error)
}

// A Pass is one (analyzer, package) unit of work.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// TestFiles marks the files of this pass that are _test.go files;
	// analyzers whose contract governs production code only (e.g.
	// detfloat's goroutine rule) consult it.
	TestFiles map[*ast.File]bool
	// Facts is shared by every pass of one driver run, letting an
	// analyzer accumulate module-wide state (the registry pass's
	// duplicate-name check). The driver runs passes sequentially, so
	// no locking is needed.
	Facts map[string]interface{}
	// Report delivers one diagnostic.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding before suppression processing.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Annotation markers. They use Go directive syntax (//tool:directive,
// no space), so godoc excludes them from rendered documentation.
const (
	markerDeterministic = "//alic:deterministic"
	markerNoalloc       = "//alic:noalloc"
	markerAllow         = "//alic:allow"
)

// PkgMarked reports whether any file of the package carries the
// //alic:<marker> package directive (e.g. "deterministic").
func PkgMarked(files []*ast.File, marker string) bool {
	want := "//alic:" + marker
	for _, f := range files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				if strings.TrimSpace(c.Text) == want {
					return true
				}
			}
		}
	}
	return false
}

// FuncMarked reports whether the function declaration's doc comment
// carries the //alic:noalloc directive.
func FuncMarked(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == markerNoalloc {
			return true
		}
	}
	return false
}

// An Allow is one parsed //alic:allow suppression comment.
type Allow struct {
	Analyzer string
	Reason   string
	Line     int // line the comment ends on
	Pos      token.Pos
	// Malformed carries a description when the comment does not parse
	// as "//alic:allow <analyzer> <reason>"; the driver surfaces it as
	// a finding so suppressions stay auditable.
	Malformed string
}

// parseAllows extracts every //alic:allow comment of a file. known
// names the valid analyzer set; an unknown analyzer or a missing
// reason yields a Malformed entry.
func parseAllows(fset *token.FileSet, f *ast.File, known map[string]bool) []Allow {
	var out []Allow
	for _, g := range f.Comments {
		for _, c := range g.List {
			text := strings.TrimSpace(c.Text)
			if !strings.HasPrefix(text, markerAllow) {
				continue
			}
			rest := strings.TrimPrefix(text, markerAllow)
			a := Allow{Line: fset.Position(c.End()).Line, Pos: c.Pos()}
			if rest != "" && !strings.HasPrefix(rest, " ") {
				// e.g. //alic:allowance — some other directive.
				continue
			}
			fields := strings.Fields(rest)
			switch {
			case len(fields) == 0:
				a.Malformed = "missing analyzer and reason: want //alic:allow <analyzer> <reason>"
			case !known[fields[0]]:
				a.Malformed = fmt.Sprintf("unknown analyzer %q", fields[0])
			case len(fields) == 1:
				a.Malformed = fmt.Sprintf("missing reason: want //alic:allow %s <reason>", fields[0])
			default:
				a.Analyzer = fields[0]
				a.Reason = strings.Join(fields[1:], " ")
			}
			out = append(out, a)
		}
	}
	return out
}
