package det

import "time"

// Test files are exempt from detfloat: tests exercise wall-clock and
// concurrency deliberately, so nothing here carries a finding.
func elapsedForTest() int64 {
	return time.Now().Unix()
}
