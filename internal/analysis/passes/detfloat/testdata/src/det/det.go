// Package det is a detfloat fixture: the directive below opts the
// package into the bit-determinism contract, so the order-sensitive
// constructs carry findings while their iteration-local or seeded
// counterparts stay clean.
//
//alic:deterministic
package det

import (
	"math/rand"
	"sort"
	"time"
)

func mapAccum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want "float accumulation across map-range iteration"
	}
	return total
}

func mapSelfAssign(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum = sum + v // want "float accumulation across map-range iteration"
	}
	return sum
}

func mapAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append to a slice declared outside the map-range loop"
	}
	sort.Strings(keys)
	return keys
}

func mapSend(m map[int]int, ch chan int) {
	for _, v := range m {
		ch <- v // want "channel send inside map-range iteration"
	}
}

// sortedAccum is the sanctioned pattern: iterate a sorted key slice,
// accumulate in its fixed order.
func sortedAccum(keys []string, m map[string]float64) float64 {
	total := 0.0
	for _, k := range keys {
		total += m[k]
	}
	return total
}

// iterationLocal writes only state declared inside the range body.
func iterationLocal(m map[int]float64) {
	for _, v := range m {
		double := 2 * v
		_ = double
	}
}

func spawn(done chan struct{}) {
	go func() { close(done) }() // want "bare go statement in deterministic package"
}

func racePick(a, b chan int) int {
	select { // want "select with 2 receive cases"
	case x := <-a:
		return x
	case y := <-b:
		return y
	}
}

// singleReceive has one receive arm plus default: no race to win.
func singleReceive(a chan int) int {
	select {
	case x := <-a:
		return x
	default:
		return 0
	}
}

func wallClock() int64 {
	return time.Now().Unix() // want "time.Now in deterministic package"
}

func globalRand() float64 {
	return rand.Float64() // want "global rand.Float64: draw from the learner's seeded rng stream instead"
}

// seededRand draws from a locally seeded generator: the sanctioned
// escape hatch (constructors and methods on the seeded value).
func seededRand(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

func stamp() int64 {
	//alic:allow detfloat fixture: wall-clock display only
	return time.Now().Unix() // want-suppressed "time.Now in deterministic package"
}

//alic:allow detflot misspelled analyzer names must not hide silently // want `malformed //alic:allow comment: unknown analyzer "detflot"`
