// Package nodet carries no //alic:deterministic directive: the same
// constructs det flags are unconstrained here.
package nodet

import "time"

func mapAccum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v
	}
	return total
}

func wallClock() int64 { return time.Now().Unix() }
