// Package detfloat enforces the bit-determinism contract in packages
// marked //alic:deterministic: same seed and same inputs must yield
// bit-identical results at every worker count (the reproducibility
// the paper's §4 cost-curve comparisons rest on). The pass flags the
// syntax that historically breaks it:
//
//   - map-range iteration whose body does something order-sensitive
//     across iterations — accumulating into a float declared outside
//     the loop, appending to an outside slice, or sending on a
//     channel (Go randomizes map iteration order per run);
//   - bare go statements outside internal/workpool, the one package
//     allowed to own goroutines (its pool guarantees index-disjoint,
//     order-free execution);
//   - select statements with two or more receive cases, whose winner
//     is scheduling-order dependent;
//   - time.Now / time.Since and the global math/rand functions
//     (seeded *rand.Rand constructed via rand.New is fine — all
//     model randomness must flow from the learner's seeded stream).
//
// Test files are exempt: tests exercise concurrency deliberately and
// pin determinism through goldens instead. Deliberate exceptions in
// production code carry //alic:allow detfloat <reason> suppressions.
package detfloat

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"alic/internal/analysis"
)

// Analyzer is the detfloat pass.
var Analyzer = &analysis.Analyzer{
	Name: "detfloat",
	Doc:  "flag scheduling- and iteration-order-dependent constructs in //alic:deterministic packages",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !analysis.PkgMarked(pass.Files, "deterministic") {
		return nil, nil
	}
	inWorkpool := pass.Pkg.Name() == "workpool"
	for _, f := range pass.Files {
		if pass.TestFiles[f] {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if isMapType(pass.TypesInfo.TypeOf(n.X)) {
					checkMapRangeBody(pass, n)
				}
			case *ast.GoStmt:
				if !inWorkpool {
					pass.Reportf(n.Pos(), "bare go statement in deterministic package: route concurrency through internal/workpool or justify with //alic:allow detfloat")
				}
			case *ast.SelectStmt:
				checkSelect(pass, n)
			case *ast.CallExpr:
				checkNondetCall(pass, n)
			}
			return true
		})
	}
	return nil, nil
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRangeBody flags order-sensitive statements whose effect
// accumulates across the randomized iteration order: writes that
// target something declared outside the range statement, and channel
// sends.
func checkMapRangeBody(pass *analysis.Pass, rs *ast.RangeStmt) {
	outside := func(e ast.Expr) bool {
		id := analysis.RootIdent(e)
		if id == nil {
			return true // cannot prove it iteration-local
		}
		obj := analysis.ObjOf(pass.TypesInfo, id)
		return !analysis.DeclaredWithin(obj, rs.Pos(), rs.End())
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send inside map-range iteration: receive order depends on randomized map order")
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, rs, n, outside)
		}
		return true
	})
}

func checkMapRangeAssign(pass *analysis.Pass, rs *ast.RangeStmt, as *ast.AssignStmt, outside func(ast.Expr) bool) {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		if isFloat(pass.TypesInfo.TypeOf(as.Lhs[0])) && outside(as.Lhs[0]) {
			pass.Reportf(as.Pos(), "float accumulation across map-range iteration is order-sensitive: iterate a sorted key slice instead")
		}
	case token.ASSIGN:
		for i, lhs := range as.Lhs {
			if i >= len(as.Rhs) {
				break
			}
			rhs := as.Rhs[i]
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && analysis.IsBuiltin(pass.TypesInfo, call, "append") && outside(lhs) {
				pass.Reportf(as.Pos(), "append to a slice declared outside the map-range loop: element order depends on randomized map order")
				continue
			}
			// x = x op y float self-accumulation.
			if !isFloat(pass.TypesInfo.TypeOf(lhs)) || !outside(lhs) {
				continue
			}
			id := analysis.RootIdent(lhs)
			if id == nil {
				continue
			}
			obj := analysis.ObjOf(pass.TypesInfo, id)
			if obj == nil {
				continue
			}
			if analysis.MentionsAny(pass.TypesInfo, rhs, map[types.Object]bool{obj: true}) {
				pass.Reportf(as.Pos(), "float accumulation across map-range iteration is order-sensitive: iterate a sorted key slice instead")
			}
		}
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// checkSelect flags selects in which two or more receive cases can
// race to be chosen.
func checkSelect(pass *analysis.Pass, sel *ast.SelectStmt) {
	receives := 0
	for _, clause := range sel.Body.List {
		cc, ok := clause.(*ast.CommClause)
		if !ok || cc.Comm == nil {
			continue // default case
		}
		switch comm := cc.Comm.(type) {
		case *ast.ExprStmt:
			if u, ok := ast.Unparen(comm.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				receives++
			}
		case *ast.AssignStmt:
			if len(comm.Rhs) == 1 {
				if u, ok := ast.Unparen(comm.Rhs[0]).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					receives++
				}
			}
		}
	}
	if receives >= 2 {
		pass.Reportf(sel.Pos(), "select with %d receive cases: the chosen case is scheduling-order dependent", receives)
	}
}

// checkNondetCall flags wall-clock and global-randomness calls.
func checkNondetCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" || fn.Name() == "Since" {
			pass.Reportf(call.Pos(), "time.%s in deterministic package: wall-clock reads are nondeterministic", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		// Constructors of locally seeded generators are the sanctioned
		// escape hatch; everything else draws from the shared global
		// source.
		if strings.HasPrefix(fn.Name(), "New") {
			return
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return // method on a *rand.Rand value, not the global source
		}
		pass.Reportf(call.Pos(), "global %s.%s: draw from the learner's seeded rng stream instead", fn.Pkg().Name(), fn.Name())
	}
}
