package detfloat_test

import (
	"testing"

	"alic/internal/analysis/analysistest"
	"alic/internal/analysis/passes/detfloat"
)

func TestDetfloat(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), detfloat.Analyzer, "det", "nodet")
}
