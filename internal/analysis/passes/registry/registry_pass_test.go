package registry_test

import (
	"testing"

	"alic/internal/analysis/analysistest"
	"alic/internal/analysis/passes/registry"
)

func TestRegistry(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), registry.Analyzer, "reg", "reg2")
}
