// Package regapi is the registration target the reg fixtures call.
package regapi

var backends = map[string]func(){}

// RegisterBackend installs a named backend constructor.
func RegisterBackend(name string, fn func()) {
	backends[name] = fn
}

// Register installs a named backend and reports success, so it can
// seed a package-level var initializer.
func Register(name string, fn func()) bool {
	backends[name] = fn
	return true
}
