// Package reg2 registers a name reg already claimed: module-wide
// duplicate detection flows through the driver's shared facts.
package reg2

import "regapi"

func init() {
	regapi.RegisterBackend("tree", func() {}) // want `duplicate registration of name "tree"`
}
