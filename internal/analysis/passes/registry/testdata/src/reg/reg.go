// Package reg exercises the registry analyzer's placement,
// constant-name, duplicate and sentinel rules.
package reg

import (
	"errors"

	"regapi"
)

// ErrMissing is a sentinel: comparisons must go through errors.Is.
var ErrMissing = errors.New("reg: backend missing")

func init() {
	regapi.RegisterBackend("tree", func() {})
	regapi.RegisterBackend("tree", func() {}) // want `duplicate registration of name "tree"`
}

// Package-level var initializers run before main: sanctioned.
var registered = regapi.Register("linear", func() {})

// RegisterPlugin is a Register* wrapper: forwarding a non-constant
// name through it is the sanctioned pattern.
func RegisterPlugin(name string, fn func()) {
	regapi.RegisterBackend(name, fn)
}

func lateRegister(name string, fn func()) {
	regapi.RegisterBackend(name, fn) // want "RegisterBackend called outside init" "registry name passed to RegisterBackend must be a compile-time constant"
}

func hasMissing(err error) bool {
	return err == ErrMissing // want "sentinel error ErrMissing compared with ==: use errors.Is so wrapped errors match"
}

// isMissing is the sanctioned comparison.
func isMissing(err error) bool {
	return errors.Is(err, ErrMissing)
}

func identity(err error) bool {
	//alic:allow registry fixture: identity comparison is the point of this helper
	return err != ErrMissing // want-suppressed `compared with !=`
}
