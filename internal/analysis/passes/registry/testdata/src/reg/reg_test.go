package reg

import "regapi"

// Test files are exempt from the registration-call checks: stubbing a
// backend from a test helper, with a computed name, is sanctioned.
func registerStub(name string) {
	regapi.RegisterBackend(name+"-stub", func() {})
}

// The sentinel rule still applies in test files.
func stubIsMissing(err error) bool {
	return err == ErrMissing // want "sentinel error ErrMissing compared with =="
}
