// Package registry enforces the registry-mediated pluggability
// contract. Model backends, acquisitions and sampling plans plug in
// through Register* calls (alic.RegisterAcquisition, model.Register,
// core.RegisterPlan, the generic registry.Registry.Register); for
// name lookup to be reliable, registration must happen at program
// start and names must be compile-time constants. The pass checks,
// at every call whose callee is named Register or Register<Thing>:
//
//   - the call is made from an init function, a package-level var
//     initializer, or another Register* function (a wrapper
//     forwarding to the underlying registry);
//   - a string-typed first argument (the registry name) is a
//     compile-time constant, and no two constant registrations of
//     the same callee use the same name anywhere in the module (the
//     pass accumulates names across packages via driver facts);
//   - additionally, sentinel errors (package-level error vars named
//     Err*) are compared with errors.Is, never == or != — the facade
//     wraps its sentinels, so identity comparison silently breaks.
//
// Test files are exempt from the registration-call checks (but not
// the sentinel rule): registering stubs inside a test body, and
// re-registering a name to exercise the registry's documented
// replace-on-re-register semantics, are the sanctioned patterns.
package registry

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"alic/internal/analysis"
)

// Analyzer is the registry pass.
var Analyzer = &analysis.Analyzer{
	Name: "registry",
	Doc:  "enforce init-time constant-name registration and errors.Is sentinel comparison",
	Run:  run,
}

const factKey = "registry.names"

type registration struct {
	pos token.Position
}

func run(pass *analysis.Pass) (interface{}, error) {
	seen, _ := pass.Facts[factKey].(map[string]registration)
	if seen == nil {
		seen = make(map[string]registration)
		pass.Facts[factKey] = seen
	}
	errType := types.Universe.Lookup("error").Type()
	for _, f := range pass.Files {
		isTest := pass.TestFiles[f]
		// Top-level decl spans give the enclosing context of a call.
		for _, decl := range f.Decls {
			decl := decl
			ast.Inspect(decl, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if !isTest {
						checkRegisterCall(pass, n, decl, seen)
					}
				case *ast.BinaryExpr:
					if n.Op == token.EQL || n.Op == token.NEQ {
						checkSentinelCompare(pass, n, errType)
					}
				}
				return true
			})
		}
	}
	return nil, nil
}

// isRegisterName reports whether a callee name denotes a registration
// entry point: "Register" itself or an exported Register<Thing>.
func isRegisterName(name string) bool {
	if name == "Register" {
		return true
	}
	if !strings.HasPrefix(name, "Register") {
		return false
	}
	r := name[len("Register")]
	return r >= 'A' && r <= 'Z'
}

func checkRegisterCall(pass *analysis.Pass, call *ast.CallExpr, topDecl ast.Decl, seen map[string]registration) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || !isRegisterName(fn.Name()) {
		return
	}
	inWrapper := false
	placementOK := false
	switch d := topDecl.(type) {
	case *ast.FuncDecl:
		if d.Name.Name == "init" && d.Recv == nil {
			placementOK = true
		}
		if isRegisterName(d.Name.Name) {
			placementOK = true
			inWrapper = true
		}
	case *ast.GenDecl:
		if d.Tok == token.VAR {
			placementOK = true // package-level var initializer
		}
	}
	if !placementOK {
		pass.Reportf(call.Pos(), "%s called outside init, a package-level var initializer or a Register* wrapper: registrations must complete before name lookup", fn.Name())
	}
	if len(call.Args) == 0 {
		return
	}
	nameArg := call.Args[0]
	t := pass.TypesInfo.TypeOf(nameArg)
	if t == nil || !isStringType(t) {
		return // value-style registration: the name comes from v.Name()
	}
	tv := pass.TypesInfo.Types[nameArg]
	if tv.Value == nil {
		if !inWrapper {
			pass.Reportf(nameArg.Pos(), "registry name passed to %s must be a compile-time constant", fn.Name())
		}
		return
	}
	name := constant.StringVal(tv.Value)
	key := fmt.Sprintf("%s/%s", calleeKey(fn), name)
	if prev, dup := seen[key]; dup {
		pass.Reportf(nameArg.Pos(), "duplicate registration of name %q (previously registered at %s)", name, prev.pos)
		return
	}
	seen[key] = registration{pos: pass.Fset.Position(nameArg.Pos())}
}

// calleeKey namespaces duplicate detection per registration entry
// point (package path + function name), so "alc" the acquisition and
// "alc" a hypothetical plan name don't collide.
func calleeKey(fn *types.Func) string {
	if fn.Pkg() != nil {
		return fn.Pkg().Path() + "." + fn.Name()
	}
	return fn.Name()
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// checkSentinelCompare flags == / != where either operand is a
// package-level error variable named Err*.
func checkSentinelCompare(pass *analysis.Pass, cmp *ast.BinaryExpr, errType types.Type) {
	for _, side := range []ast.Expr{cmp.X, cmp.Y} {
		obj := sentinelObj(pass.TypesInfo, side, errType)
		if obj == nil {
			continue
		}
		op := "=="
		if cmp.Op == token.NEQ {
			op = "!="
		}
		pass.Reportf(cmp.Pos(), "sentinel error %s compared with %s: use errors.Is so wrapped errors match", obj.Name(), op)
		return
	}
}

// sentinelObj resolves an expression to a package-level error var
// named Err*, or nil.
func sentinelObj(info *types.Info, e ast.Expr, errType types.Type) types.Object {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return nil
	}
	obj, ok := analysis.ObjOf(info, id).(*types.Var)
	if !ok || obj.Pkg() == nil {
		return nil
	}
	if !strings.HasPrefix(obj.Name(), "Err") {
		return nil
	}
	if obj.Parent() != obj.Pkg().Scope() {
		return nil // not package-level
	}
	if !types.AssignableTo(obj.Type(), errType) {
		return nil
	}
	return obj
}
