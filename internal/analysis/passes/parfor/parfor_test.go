package parfor_test

import (
	"testing"

	"alic/internal/analysis/analysistest"
	"alic/internal/analysis/passes/parfor"
)

func TestParfor(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), parfor.Analyzer, "pf")
}
