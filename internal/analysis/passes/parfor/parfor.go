// Package parfor enforces the index-disjoint-writes contract of
// workpool.ParallelFor (and DynamicFor, and the dynatree-local
// parallelFor wrapper): a body closure must write only to locations
// addressed by its own shard — writes to captured variables are legal
// only when every step of the written lvalue chain is indexed by an
// expression derived from the closure's shard parameters. Shared
// accumulators ("total += x") and un-sharded writes to captured
// state race and break the bit-determinism the goldens pin; today
// only -race and the worker-count determinism tests catch them.
//
// The pass resolves derivation by taint: the closure's parameters
// seed the tainted set, and locals assigned from tainted expressions
// join it (so "for i := start; …; out[i] = v" and "slot :=
// f.scoreSlots[k]" both pass). It also flags a ParallelFor/DynamicFor
// call nested syntactically inside another's body closure — the shape
// that deadlocked the pre-PR-2 buffered pool; the inline-fallback
// pool tolerates it now, so deliberate nesting carries an
// //alic:allow parfor <reason> suppression.
package parfor

import (
	"go/ast"
	"go/types"

	"alic/internal/analysis"
)

// Analyzer is the parfor pass.
var Analyzer = &analysis.Analyzer{
	Name: "parfor",
	Doc:  "flag non-index-disjoint writes to captured variables inside ParallelFor body closures",
	Run:  run,
}

// parallelNames are the callee names treated as sharded-loop entry
// points. Matching is by name (any package): the workpool originals
// plus thin package-local wrappers like dynatree's parallelFor.
var parallelNames = map[string]bool{
	"ParallelFor": true,
	"parallelFor": true,
	"DynamicFor":  true,
	"dynamicFor":  true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isParallelCall(pass.TypesInfo, call) {
				return true
			}
			body, ok := lastArgFuncLit(call)
			if !ok {
				return true
			}
			checkBody(pass, body)
			// The closure's interior is fully handled (including
			// nested parallel calls); don't descend into it again.
			return false
		})
	}
	return nil, nil
}

func isParallelCall(info *types.Info, call *ast.CallExpr) bool {
	fn := analysis.CalleeFunc(info, call)
	return fn != nil && parallelNames[fn.Name()]
}

func lastArgFuncLit(call *ast.CallExpr) (*ast.FuncLit, bool) {
	if len(call.Args) == 0 {
		return nil, false
	}
	fl, ok := ast.Unparen(call.Args[len(call.Args)-1]).(*ast.FuncLit)
	return fl, ok
}

func checkBody(pass *analysis.Pass, body *ast.FuncLit) {
	info := pass.TypesInfo
	tainted := taintedSet(info, body)
	ast.Inspect(body.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isParallelCall(info, n) {
				pass.Reportf(n.Pos(), "nested ParallelFor inside a ParallelFor body: the pre-inline-fallback pool deadlocked on this shape; restructure or justify with //alic:allow parfor")
				if inner, ok := lastArgFuncLit(n); ok {
					checkBody(pass, inner)
					return false
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkWrite(pass, info, body, lhs, tainted)
			}
		case *ast.IncDecStmt:
			checkWrite(pass, info, body, n.X, tainted)
		case *ast.SendStmt:
			if capturedRoot(info, body, n.Chan) != nil {
				pass.Reportf(n.Pos(), "send on a captured channel from a ParallelFor body: delivery order depends on shard scheduling")
			}
		}
		return true
	})
}

// taintedSet seeds the closure's parameters and propagates through
// assignments: a local assigned from an expression mentioning a
// tainted variable becomes tainted (over-approximation on purpose —
// taint widens the set of accepted indices, never the flagged set).
func taintedSet(info *types.Info, body *ast.FuncLit) map[types.Object]bool {
	tainted := make(map[types.Object]bool)
	if body.Type.Params != nil {
		for _, f := range body.Type.Params.List {
			for _, name := range f.Names {
				if o := info.Defs[name]; o != nil {
					tainted[o] = true
				}
			}
		}
	}
	for pass := 0; pass < 4; pass++ {
		changed := false
		ast.Inspect(body.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			fromTainted := false
			for _, rhs := range as.Rhs {
				if analysis.MentionsAny(info, rhs, tainted) {
					fromTainted = true
					break
				}
			}
			if !fromTainted {
				return true
			}
			for _, lhs := range as.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					if o := analysis.ObjOf(info, id); o != nil && !tainted[o] {
						tainted[o] = true
						changed = true
					}
				}
			}
			return true
		})
		if !changed {
			break
		}
	}
	return tainted
}

// capturedRoot returns the root object of the lvalue chain when it is
// declared outside the closure (i.e. captured), else nil.
func capturedRoot(info *types.Info, body *ast.FuncLit, e ast.Expr) types.Object {
	id := analysis.RootIdent(e)
	if id == nil {
		return nil
	}
	obj := analysis.ObjOf(info, id)
	if obj == nil {
		return nil
	}
	if analysis.DeclaredWithin(obj, body.Pos(), body.End()) {
		return nil
	}
	if _, ok := obj.(*types.Var); !ok {
		return nil // package-level funcs, types, consts: not writable state
	}
	return obj
}

// checkWrite flags a write through a captured root unless some index
// step of the lvalue chain is derived from the shard parameters.
func checkWrite(pass *analysis.Pass, info *types.Info, body *ast.FuncLit, lhs ast.Expr, tainted map[types.Object]bool) {
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name == "_" {
		return
	}
	obj := capturedRoot(info, body, lhs)
	if obj == nil {
		return
	}
	// Walk the chain looking for a shard-derived index.
	e := lhs
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			if analysis.MentionsAny(info, x.Index, tainted) {
				return // disjoint by construction
			}
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			pass.Reportf(lhs.Pos(), "write to captured %q is not indexed by the closure's shard parameters: shards race and results depend on worker count", obj.Name())
			return
		}
	}
}
