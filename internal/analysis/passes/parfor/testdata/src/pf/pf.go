// Package pf exercises the parfor analyzer: writes from a
// ParallelFor body closure must be indexed by the closure's shard
// parameters; nesting and captured-channel sends are flagged.
package pf

import "alic/internal/workpool"

type counter struct{ n int }

func racyAccumulate(xs []float64) float64 {
	total := 0.0
	workpool.ParallelFor(4, len(xs), func(start, end int) {
		for i := start; i < end; i++ {
			total += xs[i] // want `write to captured "total" is not indexed`
		}
	})
	return total
}

func incCaptured(n int) int {
	count := 0
	workpool.ParallelFor(2, n, func(start, end int) {
		count++ // want `write to captured "count" is not indexed`
	})
	return count
}

func structField(c *counter, n int) {
	workpool.ParallelFor(2, n, func(start, end int) {
		c.n = end // want `write to captured "c" is not indexed`
	})
}

func channelFanout(ch chan int, n int) {
	workpool.ParallelFor(2, n, func(start, end int) {
		ch <- start // want "send on a captured channel from a ParallelFor body"
	})
}

func nested(n int) {
	workpool.ParallelFor(2, n, func(start, end int) {
		workpool.ParallelFor(2, end-start, func(s, e int) { // want "nested ParallelFor inside a ParallelFor body"
			_ = s
		})
	})
}

func nestedAllowed(n int) {
	workpool.ParallelFor(2, n, func(start, end int) {
		//alic:allow parfor fixture: the inline-fallback pool tolerates nesting
		workpool.ParallelFor(2, end-start, func(s, e int) { // want-suppressed "nested ParallelFor inside a ParallelFor body"
			_ = s
		})
	})
}

// shardedWrite is the sanctioned shape: every write lands at an index
// derived from the shard parameters.
func shardedWrite(out, xs []float64) {
	workpool.ParallelFor(4, len(xs), func(start, end int) {
		for i := start; i < end; i++ {
			out[i] = 2 * xs[i]
		}
	})
}

// derivedIndex writes through a local derived from the shard
// parameters: taint propagation accepts the indirection.
func derivedIndex(out []float64, slots []int) {
	workpool.ParallelFor(2, len(slots), func(start, end int) {
		for k := start; k < end; k++ {
			slot := slots[k]
			out[slot] = 1
		}
	})
}

// dynamicShard covers the DynamicFor entry point's per-index body.
func dynamicShard(out []float64) {
	workpool.DynamicFor(2, len(out), func(i int) {
		out[i] = float64(i)
	})
}

// localState writes only closure-local variables.
func localState(n int) {
	workpool.ParallelFor(2, n, func(start, end int) {
		sum := 0
		for i := start; i < end; i++ {
			sum += i
		}
		_ = sum
	})
}

// viaWrapper matches the package-local wrapper spelling used by
// dynatree's parallelFor.
func viaWrapper(out []float64) {
	parallelFor(2, len(out), func(start, end int) {
		for i := start; i < end; i++ {
			out[i] = 1
		}
	})
}

func parallelFor(workers, n int, body func(start, end int)) { body(0, n) }
