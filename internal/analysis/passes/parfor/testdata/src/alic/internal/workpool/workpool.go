// Package workpool is a fixture stub carrying the real module's
// ParallelFor and DynamicFor signatures, so the pf fixtures exercise
// the analyzer against the same import path production code uses.
package workpool

// ParallelFor splits [0, n) into shards and runs body on each.
func ParallelFor(workers, n int, body func(start, end int)) {
	body(0, n)
}

// DynamicFor runs body once per index.
func DynamicFor(workers, n int, body func(i int)) {
	for i := 0; i < n; i++ {
		body(i)
	}
}
