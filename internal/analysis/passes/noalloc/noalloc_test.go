package noalloc_test

import (
	"testing"

	"alic/internal/analysis/analysistest"
	"alic/internal/analysis/passes/noalloc"
)

func TestNoalloc(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), noalloc.Analyzer, "na")
}
