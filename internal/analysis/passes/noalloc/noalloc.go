// Package noalloc enforces the zero-allocation contract of functions
// marked //alic:noalloc — the steady-state kernels whose AllocsPerRun
// pins (TestPredictMeanFastZeroAllocs et al.) guard the hot path
// dynamically. The pass flags allocation-introducing syntax inside an
// annotated function:
//
//   - make and new calls;
//   - slice and map composite literals, and address-taken composite
//     literals (&T{…} escapes in the cases that matter); plain struct
//     and array value literals are allowed — non-escaping values stay
//     on the stack;
//   - append whose destination is neither a parameter/receiver nor a
//     scratch local derived from one (caller-owned scratch buffers
//     are the sanctioned pattern, cf. augInto);
//   - string concatenation (non-constant);
//   - interface boxing of non-constant concrete values at call
//     arguments, assignments and returns;
//   - closures capturing loop variables (one allocation per
//     iteration).
//
// The pass is deliberately syntactic and conservative — it has no
// escape analysis. Constructs it cannot prove cold (a result-slice
// make that is O(1) per round, a grow-once resize) carry
// //alic:allow noalloc <reason> suppressions, and every annotated
// function keeps a matching testing.AllocsPerRun pin so the static
// and dynamic checks name the same set (TestNoallocAnnotationsHaveAllocsPins).
package noalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"alic/internal/analysis"
)

// Analyzer is the noalloc pass.
var Analyzer = &analysis.Analyzer{
	Name: "noalloc",
	Doc:  "flag allocation-introducing constructs in //alic:noalloc functions",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !analysis.FuncMarked(fd) {
				continue
			}
			check(pass, fd)
		}
	}
	return nil, nil
}

func check(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	owned := ownedRoots(info, fd)

	var loops []ast.Node // enclosing for/range statements, innermost last
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, n)
			for _, child := range childrenOf(n) {
				ast.Inspect(child, walk)
			}
			loops = loops[:len(loops)-1]
			return false
		case *ast.CallExpr:
			checkCall(pass, info, n, owned)
		case *ast.CompositeLit:
			checkComposite(pass, info, n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "address-taken composite literal escapes to the heap")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(info.TypeOf(n)) && info.Types[n].Value == nil {
				pass.Reportf(n.Pos(), "string concatenation allocates")
			}
		case *ast.AssignStmt:
			checkBoxingAssign(pass, info, n)
		case *ast.ReturnStmt:
			checkBoxingReturn(pass, info, fd, n)
		case *ast.FuncLit:
			if capturesLoopVar(info, n, loops) {
				pass.Reportf(n.Pos(), "closure captures a loop variable: allocates every iteration")
			}
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
}

// childrenOf returns the walkable children of a loop node, so the
// loop stack stays accurate while descending.
func childrenOf(n ast.Node) []ast.Node {
	var out []ast.Node
	switch n := n.(type) {
	case *ast.ForStmt:
		for _, c := range []ast.Node{n.Init, n.Cond, n.Post, n.Body} {
			if c != nil && !isNilNode(c) {
				out = append(out, c)
			}
		}
	case *ast.RangeStmt:
		for _, c := range []ast.Node{n.Key, n.Value, n.X, n.Body} {
			if c != nil && !isNilNode(c) {
				out = append(out, c)
			}
		}
	}
	return out
}

func isNilNode(n ast.Node) bool {
	switch v := n.(type) {
	case *ast.Ident:
		return v == nil
	case ast.Expr:
		return v == nil
	case ast.Stmt:
		return v == nil
	}
	return false
}

// ownedRoots computes the set of objects an append may legitimately
// target: parameters, the receiver, and "scratch" locals whose value
// derives from one of those (through slicing, indexing, selection or
// dereference). Derivation is propagated over the function's
// assignments to a fixpoint.
func ownedRoots(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	owned := make(map[types.Object]bool)
	addField := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if o := info.Defs[name]; o != nil {
					owned[o] = true
				}
			}
		}
	}
	addField(fd.Recv)
	if fd.Type.Params != nil {
		addField(fd.Type.Params)
	}
	if fd.Type.Results != nil {
		addField(fd.Type.Results) // named results are caller-visible
	}
	for pass := 0; pass < 4; pass++ {
		changed := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				lid, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				lobj := analysis.ObjOf(info, lid)
				if lobj == nil || owned[lobj] {
					continue
				}
				rid := analysis.RootIdent(as.Rhs[i])
				if rid == nil {
					continue
				}
				if robj := analysis.ObjOf(info, rid); robj != nil && owned[robj] {
					owned[lobj] = true
					changed = true
				}
			}
			return true
		})
		if !changed {
			break
		}
	}
	return owned
}

func checkCall(pass *analysis.Pass, info *types.Info, call *ast.CallExpr, owned map[types.Object]bool) {
	switch {
	case analysis.IsBuiltin(info, call, "make"):
		pass.Reportf(call.Pos(), "make allocates: hoist to a caller-owned or reusable scratch buffer")
		return
	case analysis.IsBuiltin(info, call, "new"):
		pass.Reportf(call.Pos(), "new allocates: hoist to a caller-owned or reusable scratch buffer")
		return
	case analysis.IsBuiltin(info, call, "append"):
		id := analysis.RootIdent(call.Args[0])
		obj := analysis.ObjOf(info, id)
		if id == nil || obj == nil || !owned[obj] {
			pass.Reportf(call.Pos(), "append to a slice that is not a parameter, receiver field or scratch derived from one may grow the backing array")
		}
		return
	}
	// Interface boxing at argument positions.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		// Conversion T(x).
		if types.IsInterface(tv.Type) && len(call.Args) == 1 {
			reportBoxed(pass, info, call.Args[0], "conversion to interface")
		}
		return
	}
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // slice passed through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt != nil && types.IsInterface(pt) {
			reportBoxed(pass, info, arg, "argument passed as interface")
		}
	}
}

func checkComposite(pass *analysis.Pass, info *types.Info, lit *ast.CompositeLit) {
	t := info.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		pass.Reportf(lit.Pos(), "slice literal allocates its backing array")
	case *types.Map:
		pass.Reportf(lit.Pos(), "map literal allocates")
	}
}

func checkBoxingAssign(pass *analysis.Pass, info *types.Info, as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		lt := info.TypeOf(lhs)
		if lt == nil && as.Tok == token.DEFINE {
			continue // inferred type equals RHS type: no conversion
		}
		if lt != nil && types.IsInterface(lt) {
			reportBoxed(pass, info, as.Rhs[i], "assignment to interface")
		}
	}
}

func checkBoxingReturn(pass *analysis.Pass, info *types.Info, fd *ast.FuncDecl, ret *ast.ReturnStmt) {
	results := fd.Type.Results
	if results == nil || len(ret.Results) == 0 {
		return
	}
	var resTypes []types.Type
	for _, f := range results.List {
		t := info.TypeOf(f.Type)
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		for k := 0; k < n; k++ {
			resTypes = append(resTypes, t)
		}
	}
	if len(ret.Results) != len(resTypes) {
		return // return f() spreading a tuple: conversions impossible
	}
	for i, e := range ret.Results {
		if resTypes[i] != nil && types.IsInterface(resTypes[i]) {
			reportBoxed(pass, info, e, "return as interface")
		}
	}
}

// reportBoxed flags e when converting it to an interface type would
// allocate: a non-constant, non-nil value of concrete type. Constants
// convert to static interface data; interface-to-interface
// assignments copy an existing box.
func reportBoxed(pass *analysis.Pass, info *types.Info, e ast.Expr, what string) {
	tv, ok := info.Types[e]
	if !ok || tv.Value != nil || tv.IsNil() || tv.Type == nil {
		return
	}
	t := tv.Type
	if types.IsInterface(t) {
		return
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsUntyped != 0 {
		return
	}
	if _, ok := t.(*types.TypeParam); ok {
		return
	}
	pass.Reportf(e.Pos(), "%s boxes a concrete value (allocates)", what)
}

// capturesLoopVar reports whether the closure references a variable
// declared in the header of an enclosing for/range statement.
func capturesLoopVar(info *types.Info, fl *ast.FuncLit, loops []ast.Node) bool {
	if len(loops) == 0 {
		return false
	}
	loopVars := make(map[types.Object]bool)
	collect := func(e ast.Expr) {
		if e == nil {
			return
		}
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if o := info.Defs[id]; o != nil {
					loopVars[o] = true
				}
			}
			return true
		})
	}
	for _, l := range loops {
		switch l := l.(type) {
		case *ast.ForStmt:
			if init, ok := l.Init.(*ast.AssignStmt); ok {
				for _, lhs := range init.Lhs {
					collect(lhs)
				}
			}
		case *ast.RangeStmt:
			collect(l.Key)
			collect(l.Value)
		}
	}
	if len(loopVars) == 0 {
		return false
	}
	return analysis.MentionsAny(info, fl, loopVars)
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
