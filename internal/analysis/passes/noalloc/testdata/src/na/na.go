// Package na is a noalloc fixture: the annotated functions carry a
// finding per allocating construct; the unannotated twin at the
// bottom is unconstrained.
package na

type point struct{ x, y float64 }

func consume(v interface{}) { _ = v }

// allocate exercises the allocation checks in one body.
//
//alic:noalloc
func allocate(xs []float64, name string) float64 {
	buf := make([]float64, 8) // want "make allocates"
	ptr := new(point)         // want "new allocates"
	lits := []int{1, 2}       // want "slice literal allocates its backing array"
	table := map[string]int{} // want "map literal allocates"
	escaped := &point{x: 1}   // want "address-taken composite literal escapes to the heap"
	var grown []float64
	grown = append(grown, 1) // want "append to a slice that is not a parameter"
	msg := "na: " + name     // want "string concatenation allocates"
	var boxed interface{}
	boxed = ptr // want "assignment to interface boxes a concrete value"
	_ = boxed
	_ = buf
	_ = lits
	_ = table
	_ = escaped
	_ = msg
	return grown[0]
}

// boxArg passes a concrete value to an interface-typed parameter.
//
//alic:noalloc
func boxArg(p point) {
	consume(p) // want "argument passed as interface boxes a concrete value"
}

// boxReturn returns a concrete value as an interface.
//
//alic:noalloc
func boxReturn(p point) interface{} {
	return p // want "return as interface boxes a concrete value"
}

// loopClosure builds a closure over the loop variable.
//
//alic:noalloc
func loopClosure(xs []float64) float64 {
	total := 0.0
	for i := 0; i < len(xs); i++ {
		f := func() float64 { return xs[i] } // want "closure captures a loop variable"
		total += f()
	}
	return total
}

// scratchAppend grows only caller-owned storage: parameters and
// scratch derived from them are the sanctioned append targets.
//
//alic:noalloc
func scratchAppend(dst, xs []float64) []float64 {
	tmp := dst[:0]
	for _, x := range xs {
		tmp = append(tmp, 2*x)
	}
	return tmp
}

// valueLiteral builds stack values: plain struct and array literals
// and constant-folded string concatenation do not allocate.
//
//alic:noalloc
func valueLiteral(x, y float64) float64 {
	const prefix = "na" + ": "
	p := point{x: x, y: y}
	var arr [4]float64
	arr[0] = p.x
	_ = prefix
	return arr[0] + p.y
}

// suppressed carries the sanctioned escape hatch for a result slice.
//
//alic:noalloc
func suppressed(n int) []float64 {
	//alic:allow noalloc fixture: result slice, one make per call
	return make([]float64, n) // want-suppressed "make allocates"
}

// unannotated is unconstrained: no directive, no findings.
func unannotated(n int) []float64 {
	return make([]float64, n)
}
