package alic

import (
	"context"
	"fmt"
	"math"
	"reflect"
	"testing"
	"time"
)

// goldenLearnOptions is the exact configuration the pre-refactor
// golden numbers below were captured with (gemver, dataset seed 1).
func goldenLearnOptions(batch int) LearnOptions {
	opts := DefaultLearnOptions()
	opts.PoolSize = 700
	opts.TestSize = 200
	opts.Learner.NMax = 90
	opts.Learner.NCand = 60
	opts.Learner.Batch = batch
	opts.Learner.EvalEvery = 20
	opts.Learner.Tree.Particles = 150
	opts.Learner.Tree.ScoreParticles = 30
	return opts
}

// TestSyncByteIdenticalToPrePipelineGolden pins the acceptance
// criterion of the evaluator-engine refactor: synchronous mode must
// reproduce the pre-refactor serial loop byte for byte on the
// quickstart kernel/seed — cost chain (including mid-batch curve
// checkpoints), errors, and bookkeeping — at every evaluator worker
// count. The golden strings were recorded by running the pre-refactor
// code at full float precision.
func TestSyncByteIdenticalToPrePipelineGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full golden replay")
	}
	golden := map[int][]string{
		1: {
			"cost=569.74712937068796 final=0.16345881731452996 acq=90 obs=260 uniq=76 rev=14 preq=0.28245479230507636 stop=budget",
			"curve acq=20 cost=335.87472516765956 err=0.22339541399324295",
			"curve acq=40 cost=400.78548258898104 err=0.15700699537579763",
			"curve acq=60 cost=469.77362604754364 err=0.13563130280164609",
			"curve acq=80 cost=531.73104458658179 err=0.13299537211751972",
			"curve acq=90 cost=569.74712937068796 err=0.16345881731452996",
		},
		3: {
			"cost=557.17665314065471 final=0.17223550580615477 acq=90 obs=260 uniq=73 rev=17 preq=0.29984255717069769 stop=budget",
			"curve acq=20 cost=328.59322642932324 err=0.25554361976711004",
			"curve acq=40 cost=395.66914067335642 err=0.25186090505236858",
			"curve acq=60 cost=463.94808199046855 err=0.19174136870446992",
			"curve acq=80 cost=535.98649808827724 err=0.17865535160884197",
			"curve acq=90 cost=557.17665314065471 err=0.17223550580615477",
		},
	}
	k, err := KernelByName("gemver")
	if err != nil {
		t.Fatal(err)
	}
	for batch, want := range golden {
		for _, evalWorkers := range []int{1, 4} {
			opts := goldenLearnOptions(batch)
			opts.Learner.EvalWorkers = evalWorkers
			res, err := Learn(k, opts)
			if err != nil {
				t.Fatal(err)
			}
			got := []string{fmt.Sprintf(
				"cost=%.17g final=%.17g acq=%d obs=%d uniq=%d rev=%d preq=%.17g stop=%v",
				res.Cost, res.FinalError, res.Acquired, res.Observations,
				res.Unique, res.Revisits, res.PrequentialError, res.StoppedBy)}
			for _, p := range res.Curve {
				got = append(got, fmt.Sprintf("curve acq=%d cost=%.17g err=%.17g", p.Acquired, p.Cost, p.Error))
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("batch=%d evalWorkers=%d diverged from the pre-refactor golden:\ngot  %v\nwant %v",
					batch, evalWorkers, got, want)
			}
		}
	}
}

// TestTunerByteIdenticalToPrePipelineGolden pins the tuner half of
// the refactor on a fresh session: the evaluator-pool verification
// reproduces the pre-refactor winner, measurements, baseline and
// verification cost exactly.
func TestTunerByteIdenticalToPrePipelineGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full golden replay")
	}
	k, err := KernelByName("gemver")
	if err != nil {
		t.Fatal(err)
	}
	opts := goldenLearnOptions(1)
	opts.Learner.EvalEvery = 0
	res, err := Learn(k, opts)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(k, 100)
	if err != nil {
		t.Fatal(err)
	}
	tres, err := Tune(res.Model, sess, res.Dataset, TunerOptions{
		Candidates: 1000, Verify: 8, VerifyObs: 3, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := fmt.Sprintf("best=%v measured=%.17g baseline=%.17g verifycost=%.17g",
		tres.Best.Config, tres.Best.Measured, tres.Baseline, tres.VerifyCost)
	want := "best=[15 6 16 3 16 6 3 18 7 4 2] measured=1.1158636041006522 " +
		"baseline=1.9067693150852072 verifycost=55.091979105070301"
	if got != want {
		t.Fatalf("tuner diverged from the pre-refactor golden:\ngot  %s\nwant %s", got, want)
	}
}

// TestAsyncLearnDeterministicThroughFacade drives the pipelined mode
// end to end through Learn: it completes the budget and is
// bit-deterministic across evaluator worker counts.
func TestAsyncLearnDeterministicThroughFacade(t *testing.T) {
	k, err := KernelByName("mvt")
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) *LearnResult {
		opts := quickLearnOptions()
		opts.Learner.Batch = 4
		opts.Learner.Async = true
		opts.Learner.EvalWorkers = workers
		res, err := Learn(k, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(1)
	if base.StoppedBy != StopBudget || base.Acquired != 60 {
		t.Fatalf("async run ended %v after %d acquisitions", base.StoppedBy, base.Acquired)
	}
	if math.IsNaN(base.FinalError) || base.Cost <= 0 {
		t.Fatalf("async run produced unusable result: %+v", base.LearnerResult)
	}
	for _, workers := range []int{4, 8} {
		res := run(workers)
		if res.Cost != base.Cost || res.FinalError != base.FinalError ||
			res.Observations != base.Observations || res.Unique != base.Unique {
			t.Fatalf("async evalWorkers=%d diverged: cost %v vs %v, err %v vs %v",
				workers, res.Cost, base.Cost, res.FinalError, base.FinalError)
		}
	}
}

// TestAsyncStepwiseCancellation exercises the facade's step-wise
// surface with the pipeline on: cancel mid-run, inspect the snapshot,
// resume, close.
func TestAsyncStepwiseCancellation(t *testing.T) {
	k, err := KernelByName("mm")
	if err != nil {
		t.Fatal(err)
	}
	opts := quickLearnOptions()
	opts.Learner.Batch = 4
	opts.Learner.Async = true
	opts.Learner.EvalWorkers = 4
	opts.Learner.EvalLatency = time.Millisecond
	ds, err := GenerateDataset(k, DatasetOptions{
		NConfigs:   opts.PoolSize + opts.TestSize,
		NObs:       opts.Learner.NObs,
		TrainCount: opts.PoolSize,
		Seed:       opts.DatasetSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLearner(ds, opts.Learner)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	res, err := l.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.StoppedBy != StopCancelled {
		t.Fatalf("StoppedBy = %v, want StopCancelled", res.StoppedBy)
	}
	res2, err := l.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res2.StoppedBy != StopBudget {
		t.Fatalf("resumed run ended %v", res2.StoppedBy)
	}
}
