package alic

import (
	"errors"
	"math"
	"strings"
	"testing"
)

// syntheticLearnOptions is the robustness suite's budget: small enough
// to stay in tier-1 time, large enough for the acquisition differences
// to show.
func syntheticLearnOptions() LearnOptions {
	o := DefaultLearnOptions()
	o.PoolSize = 500
	o.TestSize = 150
	o.Learner.NInit = 5
	o.Learner.NObs = 6
	o.Learner.NCand = 80
	o.Learner.NMax = 80
	o.Learner.EvalEvery = 20
	o.Learner.Tree.Particles = 80
	o.Learner.Tree.ScoreParticles = 20
	return o
}

// learnWithScorer runs LearnSpace with the named acquisition.
func learnWithScorer(t *testing.T, spaceName, scorer string) *LearnResult {
	t.Helper()
	opts := syntheticLearnOptions()
	acq, err := AcquisitionByName(scorer)
	if err != nil {
		t.Fatal(err)
	}
	opts.Learner.Scorer = acq
	res, err := LearnSpace(spaceName, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSpaceRegistryFacade pins the facade surface of the registry.
func TestSpaceRegistryFacade(t *testing.T) {
	names := SpaceNames()
	for _, want := range []string{"mm", "synthetic/needle", "exec/cc"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("SpaceNames() missing %q: %v", want, names)
		}
	}
	if _, err := SpaceByName("no/such/space"); !errors.Is(err, ErrUnknownSpace) {
		t.Fatalf("unknown space: err = %v, want ErrUnknownSpace", err)
	}
	ex, err := SpaceByName("exec/cc")
	if err != nil {
		t.Fatal(err)
	}
	if !IsLiveSpace(ex) {
		t.Fatal("exec/cc not live through the facade")
	}
	if _, err := GenerateSpaceDataset(ex, DatasetOptions{NConfigs: 10, NObs: 1, TrainFrac: 0.5, Seed: 1}); !errors.Is(err, ErrLiveSpace) {
		t.Fatalf("live dataset generation: err = %v, want ErrLiveSpace", err)
	}
}

// TestSyntheticLearnerVsRandom is the robustness satellite: on the
// structured synthetic spaces (needle, plateau) active learning must
// model the landscape at least as well as random sampling under the
// same budget, and on the flat space — where there is nothing to
// learn — it must not do worse (the acquisition-pathology regression
// guard). The generous slack keeps this a pathology guard, not a
// performance benchmark.
func TestSyntheticLearnerVsRandom(t *testing.T) {
	for _, spaceName := range []string{
		"synthetic/needle", "synthetic/plateau", "synthetic/flat",
	} {
		t.Run(strings.TrimPrefix(spaceName, "synthetic/"), func(t *testing.T) {
			al := learnWithScorer(t, spaceName, "alc")
			rnd := learnWithScorer(t, spaceName, "random")
			if math.IsNaN(al.FinalError) || math.IsNaN(rnd.FinalError) {
				t.Fatalf("NaN error: alc %v random %v", al.FinalError, rnd.FinalError)
			}
			if al.FinalError > 1.5*rnd.FinalError {
				t.Fatalf("active learning pathologically worse than random on %s: %v vs %v",
					spaceName, al.FinalError, rnd.FinalError)
			}
		})
	}
}

// TestSyntheticNeedleModelSeesTheWell pins that a trained model ranks
// the needle region below the plain — the property the warm-start
// transfer benchmark builds on.
func TestSyntheticNeedleModelSeesTheWell(t *testing.T) {
	res := learnWithScorer(t, "synthetic/needle", "alc")
	ds := res.Dataset

	// The deepest true configuration in the corpus vs the corpus
	// median prediction: the model must predict the well lower.
	best := 0
	for i, mu := range ds.TrueMean {
		if mu < ds.TrueMean[best] {
			best = i
		}
	}
	if ds.TrueMean[best] > 0.9 {
		t.Skipf("corpus sample missed the needle (best true mean %v)", ds.TrueMean[best])
	}
	preds := res.Model.PredictMeanFastBatch(ds.Features)
	var mean float64
	for _, p := range preds {
		mean += p
	}
	mean /= float64(len(preds))
	if preds[best] >= mean {
		t.Fatalf("model predicts the needle (%v) at or above the corpus mean (%v)",
			preds[best], mean)
	}
}

// TestWarmStartTransferFacade pins the cross-space warm-start flow end
// to end through the facade: export from a finished needle run, seed a
// needle-shifted run with it, and verify the warm run completes with a
// sane model. (The transfer *benefit* is measured by the transfer
// bench, not asserted here.)
func TestWarmStartTransferFacade(t *testing.T) {
	src := learnWithScorer(t, "synthetic/needle", "alc")
	sum, err := ExportWarmStart(src.Model, src.Dataset, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Space != "synthetic/needle" {
		t.Fatalf("summary space %q", sum.Space)
	}

	opts := syntheticLearnOptions()
	opts.WarmStart = sum
	warm, err := LearnSpace("synthetic/needle-shifted", opts)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(warm.FinalError) || warm.FinalError <= 0 {
		t.Fatalf("warm run error %v", warm.FinalError)
	}

	// Same budget, no warm start: both runs must complete; the warm
	// one must not be pathologically worse than cold (transfer can
	// help or be neutral, never poison).
	cold, err := LearnSpace("synthetic/needle-shifted", syntheticLearnOptions())
	if err != nil {
		t.Fatal(err)
	}
	if warm.FinalError > 1.5*cold.FinalError {
		t.Fatalf("warm start poisoned the run: warm %v vs cold %v",
			warm.FinalError, cold.FinalError)
	}

	// Dimension mismatch is refused, naming both spaces.
	bad := syntheticLearnOptions()
	bad.WarmStart = sum
	if _, err := Learn(mustKernel(t, "mvt"), bad); err == nil {
		t.Fatal("4-dim summary accepted by a 5-dim kernel")
	}
}

// TestLearnLiveSimulated drives the live tuning path against a
// simulated space (the path itself is space-agnostic): the learner
// measures on demand instead of replaying a corpus, and the winner is
// a valid configuration in the sampled pool.
func TestLearnLiveSimulated(t *testing.T) {
	sp, err := SpaceByName("synthetic/needle")
	if err != nil {
		t.Fatal(err)
	}
	opts := syntheticLearnOptions()
	opts.TestSize = 0 // unused on the live path
	opts.Learner.NMax = 40
	res, err := LearnLive(sp, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Acquired == 0 || res.Cost <= 0 {
		t.Fatalf("live run did nothing: %+v", res.LearnerResult)
	}
	if len(res.Configs) != opts.PoolSize {
		t.Fatalf("pool size %d, want %d", len(res.Configs), opts.PoolSize)
	}
	if res.Winner == nil {
		t.Fatal("no winner")
	}
	if err := sp.Check(res.Winner); err != nil {
		t.Fatalf("winner invalid: %v", err)
	}

	// Determinism: the live path over a simulated space is replayable.
	again, err := LearnLive(sp, opts)
	if err != nil {
		t.Fatal(err)
	}
	if again.Cost != res.Cost || again.WinnerPredicted != res.WinnerPredicted {
		t.Fatalf("live run not deterministic: cost %v vs %v", again.Cost, res.Cost)
	}
}

func mustKernel(t *testing.T, name string) *Kernel {
	t.Helper()
	k, err := KernelByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return k
}
