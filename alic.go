// Package alic (Active Learning for Iterative Compilation) is the
// public API of a full reproduction of
//
//	W. F. Ogilvie, P. Petoumenos, Z. Wang, H. Leather:
//	"Minimizing the Cost of Iterative Compilation with Active
//	Learning", CGO 2017.
//
// The library builds program-specific models that predict the runtime
// of a kernel under a given set of compiler optimization parameters
// (loop unrolling, cache tiling, register tiling), using dynamic-tree
// regression driven by an active learner. Its contribution — combining
// active learning with sequential analysis so that each configuration
// is profiled only as many times as the noise actually warrants — cuts
// model-training cost by a geometric-mean ~4x (up to 26x) versus the
// classic fixed 35-observation sampling plan.
//
// # Quick start
//
//	k, _ := alic.KernelByName("mm")
//	res, _ := alic.Learn(k, alic.DefaultLearnOptions())
//	fmt.Println("model RMSE:", res.FinalError)
//
// # Parallel scoring
//
// Candidate scoring — the hot path of the active-learning loop — runs
// on a shared worker pool. LearnerOptions.Workers bounds the goroutines
// used per iteration (0 = GOMAXPROCS, 1 = serial); the model's batched
// entry points (Model.PredictBatch, Model.ALMBatch, Model.ALCScores)
// shard candidates deterministically, so every worker count selects the
// same configurations and produces bit-identical results. Workers
// changes wall-clock time only. The same knob is exposed as the
// -workers flag of cmd/alic.
//
// The packages behind this facade:
//
//   - internal/core      — Algorithm 1 (active learning + sequential analysis)
//   - internal/dynatree  — particle-filtered dynamic-tree regression
//   - internal/spapt     — the 11 SPAPT kernels with Table 1 search spaces
//   - internal/loopnest, internal/costmodel — the compilation substrate
//   - internal/noise, internal/measure — the simulated profiling environment
//   - internal/dataset   — §4.5 datasets (10,000 configs x 35 observations)
//   - internal/experiment — regenerators for every table and figure
package alic

import (
	"fmt"

	"alic/internal/core"
	"alic/internal/dataset"
	"alic/internal/dynatree"
	"alic/internal/measure"
	"alic/internal/spapt"
	"alic/internal/stats"
	"alic/internal/tuner"
)

// Re-exported core types. Downstream code uses these names; the
// internal packages stay private.
type (
	// Kernel is one SPAPT search problem (benchmark).
	Kernel = spapt.Kernel
	// Config is a point of a kernel's optimization space.
	Config = spapt.Config
	// Model is a trained dynamic-tree runtime predictor.
	Model = dynatree.Forest
	// ModelConfig parameterises the dynamic-tree model.
	ModelConfig = dynatree.Config
	// LearnerOptions configures the active-learning loop.
	LearnerOptions = core.Options
	// LearnerResult reports a learning run.
	LearnerResult = core.Result
	// CurvePoint is one (acquisitions, cost, error) learning-curve sample.
	CurvePoint = core.CurvePoint
	// Session is a cost-accounted simulated profiling session.
	Session = measure.Session
	// Dataset is a §4.5-style corpus for one kernel.
	Dataset = dataset.Dataset
	// DatasetOptions configures dataset generation.
	DatasetOptions = dataset.Options
	// TunerOptions configures model-driven configuration search.
	TunerOptions = tuner.Options
	// TunerResult reports a model-driven search.
	TunerResult = tuner.Result
)

// Sampling plans and acquisition heuristics.
const (
	// VariablePlan is the paper's sequential-analysis plan.
	VariablePlan = core.VariablePlan
	// FixedPlan is the classic constant sampling plan.
	FixedPlan = core.FixedPlan
	// ALC is Cohn's acquisition heuristic (the paper's default).
	ALC = core.ALC
	// ALM is MacKay's maximum-variance heuristic.
	ALM = core.ALM
	// RandomScore disables active selection.
	RandomScore = core.RandomScore
)

// Kernels returns the 11-kernel SPAPT suite used in the paper's
// evaluation.
func Kernels() []*Kernel { return spapt.Kernels() }

// KernelNames lists the kernels in Table 1 order.
func KernelNames() []string { return spapt.Names() }

// KernelByName returns one kernel of the suite.
func KernelByName(name string) (*Kernel, error) { return spapt.ByName(name) }

// NewSession opens a simulated profiling session for a kernel. Equal
// seeds reproduce identical noise.
func NewSession(k *Kernel, seed uint64) (*Session, error) {
	return measure.NewSession(k, seed)
}

// GenerateDataset builds a dataset per §4.5 of the paper.
func GenerateDataset(k *Kernel, opts DatasetOptions) (*Dataset, error) {
	return dataset.Generate(k, opts)
}

// DefaultDatasetOptions returns the paper's dataset parameters
// (10,000 configurations, 35 observations, 75% train).
func DefaultDatasetOptions() DatasetOptions { return dataset.DefaultOptions() }

// DefaultLearnOptions returns the paper's learning parameters
// (ninit=5, nobs=35, nc=500, nmax=2500, ALC scoring, variable plan)
// with a model sized for interactive use.
func DefaultLearnOptions() LearnOptions {
	return LearnOptions{
		Learner:     core.DefaultOptions(),
		PoolSize:    4000,
		TestSize:    800,
		DatasetSeed: 1,
	}
}

// LearnOptions bundles everything Learn needs.
type LearnOptions struct {
	// Learner configures Algorithm 1 (plan, scorer, budgets, model).
	Learner LearnerOptions
	// PoolSize is the number of candidate configurations made
	// available for training.
	PoolSize int
	// TestSize is the held-out test-set size used for the error curve.
	TestSize int
	// DatasetSeed drives configuration sampling and noise.
	DatasetSeed uint64
}

// LearnResult is the outcome of Learn.
type LearnResult struct {
	// Result is the learner's report (model, curve, costs).
	*LearnerResult
	// Dataset is the corpus the run trained and evaluated on.
	Dataset *Dataset
}

// Learn builds a runtime model for the kernel with the configured
// sampling plan, profiling (simulated) binaries on demand and charging
// their cost as the paper does. The returned curve tracks test RMSE
// against cumulative profiling seconds.
func Learn(k *Kernel, opts LearnOptions) (*LearnResult, error) {
	if k == nil {
		return nil, fmt.Errorf("alic: nil kernel")
	}
	if opts.PoolSize < opts.Learner.NInit {
		return nil, fmt.Errorf("alic: PoolSize %d below NInit %d", opts.PoolSize, opts.Learner.NInit)
	}
	if opts.TestSize < 1 {
		return nil, fmt.Errorf("alic: TestSize %d < 1", opts.TestSize)
	}
	ds, err := dataset.Generate(k, dataset.Options{
		NConfigs:  opts.PoolSize + opts.TestSize,
		NObs:      opts.Learner.NObs,
		TrainFrac: float64(opts.PoolSize) / float64(opts.PoolSize+opts.TestSize),
		Seed:      opts.DatasetSeed,
	})
	if err != nil {
		return nil, err
	}
	res, err := RunOnDataset(ds, opts.Learner)
	if err != nil {
		return nil, err
	}
	return &LearnResult{LearnerResult: res, Dataset: ds}, nil
}

// RunOnDataset runs the configured learner over a pre-generated
// dataset: the training pool supplies candidates, the test split
// supplies the RMSE curve, and observation costs follow §4.3.
func RunOnDataset(ds *Dataset, opts LearnerOptions) (*LearnerResult, error) {
	if ds == nil {
		return nil, fmt.Errorf("alic: nil dataset")
	}
	pool := make(core.SlicePool, len(ds.TrainIdx))
	for i, idx := range ds.TrainIdx {
		pool[i] = ds.Features[idx]
	}
	oracle := newDatasetOracle(ds)
	testX := ds.TestFeatures()
	testY := ds.TestTargets()
	eval := func(m *Model) float64 {
		return stats.RMSE(m.PredictMeanFastBatch(testX), testY)
	}
	learner, err := core.New(opts, pool, oracle, eval)
	if err != nil {
		return nil, err
	}
	return learner.Run()
}

// datasetOracle adapts a Dataset to the core.Oracle interface with
// §4.3 cost accounting (compile once per distinct config, pay every
// observed runtime).
type datasetOracle struct {
	ds   *dataset.Dataset
	obs  map[int]int
	cost float64
}

func newDatasetOracle(ds *dataset.Dataset) *datasetOracle {
	return &datasetOracle{ds: ds, obs: make(map[int]int)}
}

func (o *datasetOracle) Observe(i int) (float64, error) {
	idx := o.ds.TrainIdx[i]
	n := o.obs[idx]
	if n == 0 {
		o.cost += o.ds.CompileTime[idx]
	}
	y := o.ds.Observe(idx, n)
	o.obs[idx] = n + 1
	o.cost += y
	return y, nil
}

func (o *datasetOracle) Cost() float64 { return o.cost }

// Tune performs model-driven configuration search (§4.1): rank random
// configurations with a trained model, verify the best few by
// profiling, and report the winner with its speedup over -O2.
func Tune(model *Model, sess *Session, ds *Dataset, opts TunerOptions) (*TunerResult, error) {
	if ds == nil {
		return nil, fmt.Errorf("alic: nil dataset")
	}
	return tuner.Search(model, sess, ds.Normalizer, opts)
}
