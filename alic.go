// Package alic (Active Learning for Iterative Compilation) is the
// public API of a full reproduction of
//
//	W. F. Ogilvie, P. Petoumenos, Z. Wang, H. Leather:
//	"Minimizing the Cost of Iterative Compilation with Active
//	Learning", CGO 2017.
//
// The library builds program-specific models that predict the runtime
// of a kernel under a given set of compiler optimization parameters
// (loop unrolling, cache tiling, register tiling), driven by an active
// learner. Its contribution — combining active learning with
// sequential analysis so that each configuration is profiled only as
// many times as the noise actually warrants — cuts model-training cost
// by a geometric-mean ~4x (up to 26x) versus the classic fixed
// 35-observation sampling plan.
//
// # Quick start
//
//	k, _ := alic.KernelByName("mm")
//	res, _ := alic.Learn(k, alic.DefaultLearnOptions())
//	fmt.Println("model RMSE:", res.FinalError)
//
// # Pluggable backends
//
// The learner is assembled from three interfaces, each with a name
// registry and swappable without touching the loop:
//
//   - Model (the regression backend): "dynatree" — the paper's
//     particle-filtered dynamic trees — or "gp", an exact Gaussian
//     process kept loop-usable by subset-of-data training and periodic
//     refits. Select by name via LearnOptions.Model, or implement
//     ModelBuilder and RegisterModel.
//   - Acquisition (the §3.3 heuristic): ALC, ALM, RandomScore, or a
//     custom implementation via RegisterAcquisition.
//   - SamplingPlan (the §4.3 observation schedule): VariablePlan,
//     FixedPlan, or a custom implementation via RegisterPlan.
//
// # Step-wise execution
//
// Learn owns the whole loop; long-running services instead construct a
// step-wise engine with NewLearner and drive it one acquisition round
// at a time:
//
//	l, _ := alic.NewLearner(ds, opts.Learner)
//	for {
//		more, err := l.Step() // one acquisition round
//		if err != nil || !more {
//			break
//		}
//	}
//	res := l.Result()
//
// Learner.Run accepts a context.Context for cancellation and reports
// progress through LearnerOptions.Progress.
//
// # Parallel scoring
//
// Candidate scoring — the hot path of the active-learning loop — runs
// on a shared worker pool. LearnerOptions.Workers bounds the goroutines
// used per iteration (0 = GOMAXPROCS, 1 = serial); backends shard
// candidates deterministically, so every worker count selects the same
// configurations and produces bit-identical results. Workers changes
// wall-clock time only. The same knob is exposed as the -workers flag
// of cmd/alic.
//
// # Batched, asynchronous evaluation
//
// Measurement — the §4.3 compile+run cost that dominates real
// deployments — flows through the evaluator engine
// (internal/evaluator): each acquisition batch is dispatched whole and
// measured with up to LearnerOptions.EvalWorkers concurrent workers
// (-eval-workers in cmd/alic). Synchronous mode is bit-identical to
// the serial loop at every worker count. LearnerOptions.Async
// (-async) additionally overlaps each round's measurement with the
// next round's candidate scoring; async results differ from sync (the
// selection model lags one round) but remain bit-deterministic across
// worker counts, with order-free §4.3 cost accounting. See
// examples/batch-parallel for the pipeline in the measurement-bound
// regime.
//
// The packages behind this facade:
//
//   - internal/core      — Algorithm 1 (active learning + sequential analysis)
//   - internal/model     — the backend registry (Model interface)
//   - internal/dynatree  — particle-filtered dynamic-tree regression
//   - internal/gp        — the exact-GP backend (§3.2's O(n^3) alternative)
//   - internal/spapt     — the 11 SPAPT kernels with Table 1 search spaces
//   - internal/loopnest, internal/costmodel — the compilation substrate
//   - internal/noise, internal/measure — the simulated profiling environment
//   - internal/evaluator — the concurrent batched evaluation engine
//   - internal/dataset   — §4.5 datasets (10,000 configs x 35 observations)
//   - internal/experiment — regenerators for every table and figure
package alic

import (
	"context"
	"errors"
	"fmt"
	"io"

	"alic/internal/core"
	"alic/internal/dataset"
	"alic/internal/dynatree"
	"alic/internal/evaluator"
	"alic/internal/measure"
	"alic/internal/model"
	"alic/internal/noise"
	"alic/internal/rng"
	"alic/internal/serve"
	"alic/internal/snapshot"
	"alic/internal/space"
	"alic/internal/spapt"
	"alic/internal/stats"
	"alic/internal/tuner"
	"alic/internal/warmstart"

	// The built-in space providers register themselves at init time:
	// the SPAPT suite, the synthetic robustness spaces, and the
	// exec-backed compiler-flag space (inert until opted into via
	// environment).
	_ "alic/internal/space/execspace"
	"alic/internal/space/spaptspace"
	_ "alic/internal/space/synthetic"
)

// Sentinel errors returned (wrapped) by the facade; assert with
// errors.Is.
var (
	// ErrNilKernel reports a nil *Kernel argument.
	ErrNilKernel = errors.New("alic: nil kernel")
	// ErrNilDataset reports a nil *Dataset argument.
	ErrNilDataset = errors.New("alic: nil dataset")
	// ErrPoolTooSmall reports a training pool smaller than the
	// learner's seed requirement.
	ErrPoolTooSmall = errors.New("alic: pool smaller than NInit")
	// ErrBadTestSize reports a non-positive held-out test-set size.
	ErrBadTestSize = errors.New("alic: test size must be >= 1")
	// ErrUnknownModel reports a LearnOptions.Model name with no
	// registered backend.
	ErrUnknownModel = model.ErrUnknownModel
	// ErrUnknownAcquisition reports an acquisition name with no
	// registration.
	ErrUnknownAcquisition = core.ErrUnknownAcquisition
	// ErrUnknownPlan reports a sampling-plan name with no
	// registration.
	ErrUnknownPlan = core.ErrUnknownPlan
	// ErrClosed reports use of a Learner after Close. Concurrent
	// Step/Run/Close — the misuse a serving layer multiplexing
	// learners makes reachable — reports it instead of panicking.
	ErrClosed = core.ErrClosed
	// ErrCorruptSnapshot reports a snapshot whose bytes fail
	// validation — bad magic, checksum mismatch, truncation, or
	// structurally impossible state. Restores never panic and never
	// half-apply: the learner is untouched when this is reported.
	ErrCorruptSnapshot = snapshot.ErrCorruptSnapshot
	// ErrUnsupportedSnapshot reports a snapshot written by a newer
	// format version than this build reads.
	ErrUnsupportedSnapshot = snapshot.ErrUnsupportedVersion
	// ErrSnapshotMismatch reports a well-formed snapshot taken from a
	// learner with different structural parameters (pool size,
	// budgets, plan/scorer/backend, seed — or a different search
	// space) than the one restoring it.
	ErrSnapshotMismatch = core.ErrSnapshotMismatch
	// ErrUnknownSpace reports a space name with no registration; the
	// error text lists every registered space.
	ErrUnknownSpace = space.ErrUnknownSpace
	// ErrLiveSpace reports a corpus-based operation (dataset
	// generation, serving) on a space that measures by executing real
	// commands; use LearnLive for those.
	ErrLiveSpace = dataset.ErrLiveSpace
)

// Re-exported core types. Downstream code uses these names; the
// internal packages stay private.
type (
	// Kernel is one SPAPT search problem (benchmark).
	Kernel = spapt.Kernel
	// Space is one registered search problem: the SPAPT kernels, the
	// synthetic robustness spaces, the exec-backed compiler-flag
	// space, or anything added with RegisterSpace.
	Space = space.Space
	// SpaceParam is one tunable dimension of a search space.
	SpaceParam = space.Param
	// SpaceMeasurer observes configurations of a space.
	SpaceMeasurer = space.Measurer
	// RandStream is the deterministic random stream a Space's
	// RandomConfig draws from.
	RandStream = rng.Stream
	// NoiseModel describes a simulated space's measurement-noise
	// profile (the zero value documents a live space, whose noise is
	// the real machine's).
	NoiseModel = noise.Model
	// Config is a point of a search space ([]int, one value per
	// parameter).
	Config = space.Config
	// WarmStart is the learner-level transfer payload (standardised
	// pseudo-observations); build one from a WarmStartSummary with
	// ApplyWarmStart.
	WarmStart = core.WarmStart
	// WarmStartSummary is the portable cross-space transfer summary
	// exported from a finished run.
	WarmStartSummary = warmstart.Summary
	// Model is the pluggable regression-backend interface every
	// learner trains (see internal/model for the contract).
	Model = model.Model
	// ModelBuilder constructs a backend Model for a learning run.
	ModelBuilder = model.Builder
	// ModelParams is what a ModelBuilder receives at seeding time.
	ModelParams = model.Params
	// FeatureImportancer is the optional backend interface exposing
	// per-dimension relevance scores (the dynatree backend has it).
	FeatureImportancer = model.Importancer
	// TreeModel is the concrete dynamic-tree backend, for callers that
	// need forest-specific inspection beyond the Model interface.
	TreeModel = dynatree.Forest
	// ModelConfig parameterises the dynamic-tree backend.
	ModelConfig = dynatree.Config
	// Acquisition is the pluggable acquisition heuristic (§3.3).
	Acquisition = core.Acquisition
	// SamplingPlan is the pluggable observation schedule (§4.3).
	SamplingPlan = core.SamplingPlan
	// Rand is the deterministic randomness slice handed to
	// acquisitions.
	Rand = core.Rand
	// Learner is the step-wise active-learning engine; construct one
	// with NewLearner.
	Learner = core.Learner
	// LearnerOptions configures the active-learning loop.
	LearnerOptions = core.Options
	// LearnerResult reports a learning run.
	LearnerResult = core.Result
	// LearnerProgress is handed to LearnerOptions.Progress after every
	// step of a run.
	LearnerProgress = core.Progress
	// StopReason identifies the completion criterion that ended a run.
	StopReason = core.StopReason
	// CurvePoint is one (acquisitions, cost, error) learning-curve sample.
	CurvePoint = core.CurvePoint
	// Session is a cost-accounted simulated profiling session.
	Session = measure.Session
	// Dataset is a §4.5-style corpus for one kernel.
	Dataset = dataset.Dataset
	// DatasetOptions configures dataset generation.
	DatasetOptions = dataset.Options
	// TunerOptions configures model-driven configuration search.
	TunerOptions = tuner.Options
	// TunerResult reports a model-driven search.
	TunerResult = tuner.Result
	// Server is the multi-tenant tuning service: many named learner
	// sessions — per-tenant, per-kernel — stepped by a fair weighted
	// round-robin scheduler over shared process resources. Serve its
	// HTTP API with Server.Handler (see internal/serve and
	// cmd/alic-serve).
	Server = serve.Server
	// ServerOptions configures a Server.
	ServerOptions = serve.Options
	// ServerStats is the server-wide counter snapshot.
	ServerStats = serve.Stats
	// ServerSession is one hosted learner session handle.
	ServerSession = serve.Session
	// SessionSpec configures one hosted learner session.
	SessionSpec = serve.SessionSpec
	// SessionInfo is the JSON snapshot of a hosted session.
	SessionInfo = serve.SessionInfo
)

// NewServer starts a tuning service and its scheduler workers.
func NewServer(opts ServerOptions) *Server { return serve.NewServer(opts) }

// Built-in sampling plans and acquisition heuristics. These are the
// registry defaults; RegisterAcquisition / RegisterPlan add custom
// ones.
var (
	// VariablePlan is the paper's sequential-analysis plan.
	VariablePlan = core.VariablePlan
	// FixedPlan is the classic constant sampling plan.
	FixedPlan = core.FixedPlan
	// ALC is Cohn's acquisition heuristic (the paper's default).
	ALC = core.ALC
	// ALM is MacKay's maximum-variance heuristic.
	ALM = core.ALM
	// RandomScore disables active selection.
	RandomScore = core.RandomScore
)

// Completion criteria reported in LearnerResult.StoppedBy.
const (
	// StopNone means the run has not completed yet.
	StopNone = core.StopNone
	// StopBudget means the NMax acquisition budget was exhausted.
	StopBudget = core.StopBudget
	// StopByCost means the StopCost wall-clock criterion fired.
	StopByCost = core.StopByCost
	// StopByError means the StopError prequential criterion fired.
	StopByError = core.StopByError
	// StopExhausted means the candidate pool ran dry.
	StopExhausted = core.StopExhausted
	// StopCancelled means the run's context was cancelled.
	StopCancelled = core.StopCancelled
)

// RegisterModel makes a backend selectable by name through
// LearnOptions.Model and the -model flag of cmd/alic.
func RegisterModel(b ModelBuilder) { model.Register(b) }

// ModelByName returns a registered backend builder.
func ModelByName(name string) (ModelBuilder, error) { return model.ByName(name) }

// ModelNames lists the registered backends.
func ModelNames() []string { return model.Names() }

// PickBest returns the positions of the batch lowest (minimise) or
// highest scores, best first — the ranking helper custom Acquisition
// implementations share with the built-ins.
func PickBest(scores []float64, batch int, minimise bool) []int {
	return core.PickBest(scores, batch, minimise)
}

// RegisterAcquisition makes an acquisition heuristic selectable by
// name.
func RegisterAcquisition(a Acquisition) { core.RegisterAcquisition(a) }

// AcquisitionByName returns a registered acquisition heuristic.
func AcquisitionByName(name string) (Acquisition, error) { return core.AcquisitionByName(name) }

// AcquisitionNames lists the registered acquisition heuristics.
func AcquisitionNames() []string { return core.AcquisitionNames() }

// RegisterPlan makes a sampling plan selectable by name.
func RegisterPlan(p SamplingPlan) { core.RegisterPlan(p) }

// PlanByName returns a registered sampling plan.
func PlanByName(name string) (SamplingPlan, error) { return core.PlanByName(name) }

// PlanNames lists the registered sampling plans.
func PlanNames() []string { return core.PlanNames() }

// RegisterSpace makes a search space selectable by name through
// SpaceByName, LearnSpace, the -space flag of cmd/alic, and serving
// session specs. Call it from an init function (see
// examples/custom-space).
func RegisterSpace(s Space) { space.Register(s) }

// SpaceByName returns a registered search space.
func SpaceByName(name string) (Space, error) { return space.ByName(name) }

// SpaceNames lists the registered search spaces in sorted order.
func SpaceNames() []string { return space.Names() }

// IsLiveSpace reports whether sp measures by executing real commands
// (no simulated corpus; tune it with LearnLive).
func IsLiveSpace(sp Space) bool { return space.IsLive(sp) }

// The space helper kit re-exports the generic implementations of the
// Space interface's mechanical methods, so user-defined spaces outside
// this module compose them instead of reimplementing the contracts
// (see examples/custom-space).

// CheckSpaceConfig is the generic Space.Check: one value in [1, Max]
// per parameter.
func CheckSpaceConfig(params []SpaceParam, cfg Config) error {
	return space.CheckConfig(params, cfg)
}

// UniformSpaceFeatures is the generic Space.Features: dimension i maps
// to (v-1)/(Max-1), every axis spanning [0, 1].
func UniformSpaceFeatures(params []SpaceParam, cfg Config) []float64 {
	return space.UniformFeatures(params, cfg)
}

// UniformRandomConfig is the generic Space.RandomConfig: one uniform
// value in [1, Max] per parameter, one Intn draw per dimension.
func UniformRandomConfig(params []SpaceParam, r *RandStream) Config {
	return space.UniformRandom(params, r)
}

// BaselineOnesConfig returns the all-ones configuration — the generic
// Space.BaselineConfig.
func BaselineOnesConfig(n int) Config { return space.BaselineOnes(n) }

// HashSpaceConfig is the generic Space.Key: a stable FNV-64a hash of
// the (space name, configuration) pair, so equal configurations of
// different spaces never collide into the same noise stream.
func HashSpaceConfig(name string, cfg Config) uint64 { return space.HashConfig(name, cfg) }

// SpaceSizeOf returns the cardinality of a parameter list.
func SpaceSizeOf(params []SpaceParam) float64 { return space.SizeOf(params) }

// ValidateSpaceParams is the generic Space.Validate: at least one
// parameter, unique names, positive ranges.
func ValidateSpaceParams(params []SpaceParam) error { return space.ValidateParams(params) }

// WrapKernel adapts a SPAPT kernel — including unregistered ones, e.g.
// retargeted via WithMachine — to the Space interface.
func WrapKernel(k *Kernel) (Space, error) { return spaptspace.Wrap(k) }

// Kernels returns the 11-kernel SPAPT suite used in the paper's
// evaluation.
func Kernels() []*Kernel { return spapt.Kernels() }

// KernelNames lists the kernels in Table 1 order.
func KernelNames() []string { return spapt.Names() }

// KernelByName returns one kernel of the suite.
func KernelByName(name string) (*Kernel, error) { return spapt.ByName(name) }

// NewSession opens a simulated profiling session for a kernel. Equal
// seeds reproduce identical noise.
func NewSession(k *Kernel, seed uint64) (*Session, error) {
	sp, err := spaptspace.Wrap(k)
	if err != nil {
		return nil, ErrNilKernel
	}
	return measure.NewSession(sp, seed)
}

// NewSpaceSession opens a profiling session for any search space. For
// simulated spaces equal seeds reproduce identical noise; live spaces
// measure the real machine.
func NewSpaceSession(sp Space, seed uint64) (*Session, error) {
	return measure.NewSession(sp, seed)
}

// GenerateDataset builds a dataset per §4.5 of the paper.
func GenerateDataset(k *Kernel, opts DatasetOptions) (*Dataset, error) {
	sp, err := spaptspace.Wrap(k)
	if err != nil {
		return nil, ErrNilKernel
	}
	return dataset.Generate(sp, opts)
}

// GenerateSpaceDataset builds a §4.5-style corpus for any simulated
// search space; live spaces are rejected with ErrLiveSpace.
func GenerateSpaceDataset(sp Space, opts DatasetOptions) (*Dataset, error) {
	return dataset.Generate(sp, opts)
}

// DefaultDatasetOptions returns the paper's dataset parameters
// (10,000 configurations, 35 observations, 75% train).
func DefaultDatasetOptions() DatasetOptions { return dataset.DefaultOptions() }

// DefaultLearnOptions returns the paper's learning parameters
// (ninit=5, nobs=35, nc=500, nmax=2500, ALC scoring, variable plan,
// dynatree backend) with a model sized for interactive use.
func DefaultLearnOptions() LearnOptions {
	return LearnOptions{
		Learner:     core.DefaultOptions(),
		PoolSize:    4000,
		TestSize:    800,
		DatasetSeed: 1,
	}
}

// LearnOptions bundles everything Learn needs.
type LearnOptions struct {
	// Learner configures Algorithm 1 (plan, scorer, budgets, model).
	Learner LearnerOptions
	// Model selects the regression backend by registry name
	// ("dynatree", "gp", or a RegisterModel'd custom backend),
	// overriding any Learner.Model builder. Empty leaves Learner.Model
	// in charge: a set builder wins, nil selects dynatree. Either way
	// the dynatree backend is configured by Learner.Tree.
	Model string
	// PoolSize is the number of candidate configurations made
	// available for training.
	PoolSize int
	// TestSize is the held-out test-set size used for the error curve.
	TestSize int
	// DatasetSeed drives configuration sampling and noise.
	DatasetSeed uint64
	// WarmStart, when non-nil, seeds the run from a posterior summary
	// exported by a finished run on a related space (ExportWarmStart).
	WarmStart *WarmStartSummary
}

// LearnResult is the outcome of Learn.
type LearnResult struct {
	// Result is the learner's report (model, curve, costs).
	*LearnerResult
	// Dataset is the corpus the run trained and evaluated on.
	Dataset *Dataset
}

// Learn builds a runtime model for the kernel with the configured
// sampling plan and backend, profiling (simulated) binaries on demand
// and charging their cost as the paper does. The returned curve tracks
// test RMSE against cumulative profiling seconds.
func Learn(k *Kernel, opts LearnOptions) (*LearnResult, error) {
	return LearnContext(context.Background(), k, opts)
}

// LearnContext is Learn under a context: cancellation ends the run
// gracefully after the current acquisition round with
// StoppedBy == StopCancelled (partial model and curve intact) instead
// of abandoning it.
func LearnContext(ctx context.Context, k *Kernel, opts LearnOptions) (*LearnResult, error) {
	if k == nil {
		return nil, ErrNilKernel
	}
	sp, err := spaptspace.Wrap(k)
	if err != nil {
		return nil, ErrNilKernel
	}
	return learnSpace(ctx, sp, opts)
}

// LearnSpace builds a runtime model for any registered simulated
// search space — the space-generic Learn. Live spaces are rejected
// with ErrLiveSpace (use LearnLive).
func LearnSpace(name string, opts LearnOptions) (*LearnResult, error) {
	return LearnSpaceContext(context.Background(), name, opts)
}

// LearnSpaceContext is LearnSpace under a context.
func LearnSpaceContext(ctx context.Context, name string, opts LearnOptions) (*LearnResult, error) {
	sp, err := space.ByName(name)
	if err != nil {
		return nil, err
	}
	return learnSpace(ctx, sp, opts)
}

func learnSpace(ctx context.Context, sp Space, opts LearnOptions) (*LearnResult, error) {
	if opts.PoolSize < opts.Learner.NInit {
		return nil, fmt.Errorf("%w: PoolSize %d below NInit %d",
			ErrPoolTooSmall, opts.PoolSize, opts.Learner.NInit)
	}
	if opts.TestSize < 1 {
		return nil, fmt.Errorf("%w: got %d", ErrBadTestSize, opts.TestSize)
	}
	if opts.Model != "" {
		// Non-empty names override any Learner.Model builder. The
		// registry's config-less "dynatree" entry adopts Learner.Tree
		// inside the learner, so name-based selection keeps honouring
		// the tree configuration.
		b, err := model.ByName(opts.Model)
		if err != nil {
			return nil, err
		}
		opts.Learner.Model = b
	}
	ds, err := dataset.Generate(sp, dataset.Options{
		NConfigs:   opts.PoolSize + opts.TestSize,
		NObs:       opts.Learner.NObs,
		TrainCount: opts.PoolSize,
		Seed:       opts.DatasetSeed,
	})
	if err != nil {
		return nil, err
	}
	if opts.WarmStart != nil {
		ws, err := warmstart.Apply(opts.WarmStart, ds)
		if err != nil {
			return nil, err
		}
		opts.Learner.WarmStart = ws
	}
	res, err := RunOnDatasetContext(ctx, ds, opts.Learner)
	if err != nil {
		return nil, err
	}
	return &LearnResult{LearnerResult: res, Dataset: ds}, nil
}

// LiveResult is the outcome of LearnLive.
type LiveResult struct {
	// Result is the learner's report (model, costs, curve-less: live
	// spaces have no held-out ground truth).
	*LearnerResult
	// Configs is the sampled candidate pool the learner chose from.
	Configs []Config
	// Winner is the configuration the trained model predicts fastest.
	Winner Config
	// WinnerPredicted is the model's predicted mean runtime at Winner.
	WinnerPredicted float64
}

// LearnLive tunes a search space by measuring it directly — each
// acquisition compiles and runs the real configuration through the
// space's measurer instead of replaying a pre-generated corpus. This
// is the only way to drive live spaces such as exec/cc (whose
// measurer shells out to a toolchain), and it works for simulated
// spaces too. There is no held-out test set, so the result carries no
// RMSE curve; the winner is the model's predicted-best pool
// configuration.
func LearnLive(sp Space, opts LearnOptions) (*LiveResult, error) {
	return LearnLiveContext(context.Background(), sp, opts)
}

// LearnLiveContext is LearnLive under a context.
func LearnLiveContext(ctx context.Context, sp Space, opts LearnOptions) (*LiveResult, error) {
	if sp == nil {
		return nil, fmt.Errorf("alic: nil space")
	}
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	if opts.PoolSize < opts.Learner.NInit {
		return nil, fmt.Errorf("%w: PoolSize %d below NInit %d",
			ErrPoolTooSmall, opts.PoolSize, opts.Learner.NInit)
	}
	if float64(opts.PoolSize) > sp.Size()/2 {
		return nil, fmt.Errorf("alic: PoolSize %d too large for space of size %g",
			opts.PoolSize, sp.Size())
	}
	if opts.Model != "" {
		b, err := model.ByName(opts.Model)
		if err != nil {
			return nil, err
		}
		opts.Learner.Model = b
	}

	// Opening the measurer is the opt-in gate: unconfigured live
	// spaces fail here, before anything executes.
	meas, err := sp.Measurer(opts.DatasetSeed)
	if err != nil {
		return nil, err
	}
	if c, ok := meas.(interface{ Close() error }); ok {
		defer c.Close()
	}

	// Sample the candidate pool exactly as dataset generation does
	// (same stream, same rejection sampling), then standardise features
	// over the pool.
	r := rng.NewStream(opts.DatasetSeed, 0xda7a5e7) // dataset stream
	seen := make(map[uint64]bool, opts.PoolSize)
	cfgs := make([]Config, 0, opts.PoolSize)
	for len(cfgs) < opts.PoolSize {
		cfg := sp.RandomConfig(r)
		key := sp.Key(cfg)
		if seen[key] {
			continue
		}
		seen[key] = true
		cfgs = append(cfgs, cfg)
	}
	raw := make([][]float64, len(cfgs))
	for i, cfg := range cfgs {
		raw[i] = sp.Features(cfg)
	}
	nz := stats.FitNormalizer(raw)
	poolX := nz.TransformAll(raw)

	if opts.WarmStart != nil {
		ws, err := warmstart.ApplyRaw(opts.WarmStart, sp.Name(), sp.Dim(), nz)
		if err != nil {
			return nil, err
		}
		opts.Learner.WarmStart = ws
	}
	if opts.Learner.Space == "" {
		opts.Learner.Space = sp.Name()
	}

	src, err := evaluator.NewSpaceSource(meas, cfgs)
	if err != nil {
		return nil, err
	}
	eng := evaluator.New(src, evaluator.Options{
		Workers: opts.Learner.EvalWorkers,
		Window:  learnerWindow(opts.Learner),
		Latency: opts.Learner.EvalLatency,
	})
	learner, err := core.NewWithEvaluator(opts.Learner, core.SlicePool(poolX), eng, nil)
	if err != nil {
		return nil, err
	}
	defer learner.Close()
	res, err := learner.Run(ctx)
	if err != nil {
		return nil, err
	}

	out := &LiveResult{LearnerResult: res, Configs: cfgs}
	if res.Model != nil {
		preds := res.Model.PredictMeanFastBatch(poolX)
		best := 0
		for i, p := range preds {
			if p < preds[best] {
				best = i
			}
		}
		out.Winner = cfgs[best]
		out.WinnerPredicted = preds[best]
	}
	return out, nil
}

// NewLearner constructs a step-wise learner over a pre-generated
// dataset: the training pool supplies candidates, the test split
// supplies the RMSE curve, and observation costs follow §4.3 through
// the evaluator engine (internal/evaluator), which measures each
// acquisition batch with up to LearnerOptions.EvalWorkers concurrent
// workers — or pipelines rounds entirely when LearnerOptions.Async is
// set. Drive it with Learner.Step (one acquisition round per call) or
// Learner.Run (whole loop under a context). Call Learner.Close when
// abandoning an asynchronous run mid-flight.
func NewLearner(ds *Dataset, opts LearnerOptions) (*Learner, error) {
	if ds == nil {
		return nil, ErrNilDataset
	}
	if opts.Space == "" && ds.Space != nil {
		// Default the snapshot guard: snapshots name their space, and
		// restoring under a different one fails with
		// ErrSnapshotMismatch instead of mixing trajectories.
		opts.Space = ds.Space.Name()
	}
	pool := make(core.SlicePool, len(ds.TrainIdx))
	for i, idx := range ds.TrainIdx {
		pool[i] = ds.Features[idx]
	}
	src, err := evaluator.NewDatasetSource(ds)
	if err != nil {
		return nil, err
	}
	eng := evaluator.New(src, evaluator.Options{
		Workers: opts.EvalWorkers,
		Window:  learnerWindow(opts),
		Latency: opts.EvalLatency,
	})
	testX := ds.TestFeatures()
	testY := ds.TestTargets()
	eval := func(m Model) float64 {
		return stats.RMSE(m.PredictMeanFastBatch(testX), testY)
	}
	return core.NewWithEvaluator(opts, pool, eng, eval)
}

// learnerWindow sizes the engine's in-flight window so one whole
// asynchronous acquisition round fits without back-pressure.
func learnerWindow(opts LearnerOptions) int {
	plan := opts.Plan
	if plan == nil {
		plan = VariablePlan
	}
	batch := opts.Batch
	if batch < 1 {
		batch = 1
	}
	round := batch * plan.AcquireObservations(opts)
	if round < 32 {
		round = 32
	}
	return 2 * round
}

// ResumeLearner reconstructs a step-wise learner from a snapshot
// written by Learner.Snapshot: construct a fresh learner over the
// dataset exactly as NewLearner does, then load the saved state. The
// dataset and options must match the snapshotting run's (same
// DatasetSeed, budgets, plan, scorer, backend) — mismatches fail with
// ErrSnapshotMismatch rather than diverging silently. Worker counts
// are free to change: the resumed run is bit-identical either way.
func ResumeLearner(ds *Dataset, opts LearnerOptions, r io.Reader) (*Learner, error) {
	l, err := NewLearner(ds, opts)
	if err != nil {
		return nil, err
	}
	if err := l.Restore(r); err != nil {
		l.Close()
		return nil, err
	}
	return l, nil
}

// RunOnDataset runs the configured learner over a pre-generated
// dataset to completion (see NewLearner for the wiring).
func RunOnDataset(ds *Dataset, opts LearnerOptions) (*LearnerResult, error) {
	return RunOnDatasetContext(nil, ds, opts)
}

// RunOnDatasetContext is RunOnDataset under a context (nil means
// background): cancellation stops the run gracefully after the
// current round with StoppedBy == StopCancelled.
func RunOnDatasetContext(ctx context.Context, ds *Dataset, opts LearnerOptions) (*LearnerResult, error) {
	learner, err := NewLearner(ds, opts)
	if err != nil {
		return nil, err
	}
	defer learner.Close()
	return learner.Run(ctx)
}

// Tune performs model-driven configuration search (§4.1): rank random
// configurations with a trained model, verify the best few by
// profiling, and report the winner with its speedup over -O2.
func Tune(m Model, sess *Session, ds *Dataset, opts TunerOptions) (*TunerResult, error) {
	if ds == nil {
		return nil, ErrNilDataset
	}
	return tuner.Search(m, sess, ds.Normalizer, opts)
}

// ExportWarmStart summarises a trained model over its dataset as a
// compact, portable posterior summary (n points; 0 picks a default):
// the payload cross-space warm starts consume via LearnOptions,
// serving specs, or the -warm-start flag of cmd/alic.
func ExportWarmStart(m Model, ds *Dataset, n int) (*WarmStartSummary, error) {
	if ds == nil {
		return nil, ErrNilDataset
	}
	return warmstart.Export(m, ds, n)
}

// ApplyWarmStart maps a summary onto a receiving dataset's feature
// space, producing the LearnerOptions.WarmStart payload for callers
// wiring learners manually with NewLearner.
func ApplyWarmStart(sum *WarmStartSummary, ds *Dataset) (*WarmStart, error) {
	if ds == nil {
		return nil, ErrNilDataset
	}
	return warmstart.Apply(sum, ds)
}

// SaveWarmStart writes a summary to path as JSON.
func SaveWarmStart(sum *WarmStartSummary, path string) error { return warmstart.Save(sum, path) }

// LoadWarmStart reads a summary written by SaveWarmStart.
func LoadWarmStart(path string) (*WarmStartSummary, error) { return warmstart.Load(path) }
