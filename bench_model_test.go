package alic

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"testing"
	"time"

	"alic/internal/core"
	"alic/internal/model"
	"alic/internal/rng"
)

// The model-scoring benchmarks measure the pool-interned scoring
// engine against the historical row-gathering path on the same model
// state. "path=indexed" is the production configuration: the dynatree
// backend interns the candidate pool at seeding time and the learner
// scores by stable pool index, reusing cached particle routes across
// rounds. "path=row" hides the backend's PoolBinder extension, forcing
// the learner to gather feature rows and re-route the full candidate
// set through every scoring particle on every call — the pre-PR cost
// profile. Both paths select identical configurations (the PoolBinder
// contract, enforced by core's TestIndexedPathMatchesRowPath); only
// wall-clock differs.

// rowOnlyModel hides the backend's PoolBinder extension while keeping
// the round-batched update entry point: the row path isolates the
// historical *scoring* cost, so it must not also degrade the update
// path both configurations share.
type rowOnlyModel struct {
	model.Model
	ru model.RoundUpdater
}

func (m rowOnlyModel) UpdateRound(xs [][]float64, ys, preds []float64) {
	m.ru.UpdateRound(xs, ys, preds)
}

type rowOnlyBuilder struct{ inner model.Builder }

func (b rowOnlyBuilder) Name() string { return b.inner.Name() }
func (b rowOnlyBuilder) New(p model.Params) (model.Model, error) {
	m, err := b.inner.New(p)
	if err != nil {
		return nil, err
	}
	return rowOnlyModel{m, m.(model.RoundUpdater)}, nil
}

// benchModelOptions is the default learner config at benchmark scale:
// ALC acquisition (the paper's choice), variable plan, a 2000-config
// pool scored 500 fresh candidates at a time.
func benchModelOptions(workers int, rowOnly bool) core.Options {
	opts := core.DefaultOptions()
	opts.NInit = 5
	opts.NObs = 10
	opts.NCand = 500
	opts.NMax = 90
	opts.Batch = 8
	opts.EvalEvery = 0
	opts.Workers = workers
	opts.Tree.Particles = 300
	opts.Tree.ScoreParticles = 100
	if rowOnly {
		opts.Model = rowOnlyBuilder{inner: model.DynatreeBuilder{Config: opts.Tree}}
	}
	return opts
}

func benchModelPool() core.SlicePool {
	r := rng.New(3)
	pool := make(core.SlicePool, 2000)
	for i := range pool {
		pool[i] = []float64{r.Float64(), r.Float64(), r.Float64(), r.Float64()}
	}
	return pool
}

// newTrainedModelLearner runs one full learning session, leaving a
// mid-run model whose trees have realistic depth for steady-state
// scoring.
func newTrainedModelLearner(tb testing.TB, workers int, rowOnly bool) *core.Learner {
	tb.Helper()
	pool := benchModelPool()
	l, err := core.New(benchModelOptions(workers, rowOnly), pool, &benchOracle{pool: pool, r: rng.New(4)}, nil)
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := l.Run(nil); err != nil {
		tb.Fatal(err)
	}
	return l
}

func benchSelectSteady(b *testing.B, workers int, rowOnly bool) {
	l := newTrainedModelLearner(b, workers, rowOnly)
	// Warm outside the timer: the first indexed call routes the pool
	// and populates the slabs; steady state is every call after it.
	if _, err := l.SelectBatch(8); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.SelectBatch(8); err != nil {
			b.Fatal(err)
		}
	}
}

var benchPaths = []struct {
	name    string
	rowOnly bool
}{{"indexed", false}, {"row", true}}

// BenchmarkSelectBatchSteady measures one steady-state acquisition
// selection — candidate assembly plus ALC scoring over ~500 candidates
// against a trained 300-particle forest — through both scoring paths.
func BenchmarkSelectBatchSteady(b *testing.B) {
	for _, path := range benchPaths {
		for _, w := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("path=%s/workers=%d", path.name, w), func(b *testing.B) {
				benchSelectSteady(b, w, path.rowOnly)
			})
		}
	}
}

func benchLearnRounds(b *testing.B, workers int, rowOnly bool) {
	opts := benchModelOptions(workers, rowOnly)
	pool := benchModelPool()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := core.New(opts, pool, &benchOracle{pool: pool, r: rng.New(4)}, nil)
		if err != nil {
			b.Fatal(err)
		}
		res, err := l.Run(nil)
		if err != nil {
			b.Fatal(err)
		}
		if res.Acquired != opts.NMax {
			b.Fatalf("acquired %d", res.Acquired)
		}
	}
}

// BenchmarkLearnRounds measures a full multi-round learning session —
// seeding, then ~11 rounds of batch-8 selection interleaved with model
// updates — through both scoring paths. Unlike the steady-state
// selection benchmark this includes the cache maintenance each round's
// updates cause, so it is the honest end-to-end cost of the routing
// cache in Algorithm 1's loop. Know what it can show: model updates
// (particle propagation, resampling) dominate a session and are
// identical in both paths, so even a zero-cost cache caps the session
// ratio around ~1.25x at this shape — the committed ratio near 1.0x
// means cached scoring plus all maintenance (slot-scoped redirect
// logs, slab copy-on-write, compaction translate) costs about what
// fresh re-descent does, while the steady-state benchmark isolates
// the pure scoring win (~3x).
func BenchmarkLearnRounds(b *testing.B) {
	for _, path := range benchPaths {
		for _, w := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("path=%s/workers=%d", path.name, w), func(b *testing.B) {
				benchLearnRounds(b, w, path.rowOnly)
			})
		}
	}
}

// modelBenchRecord is one row of BENCH_model.json.
type modelBenchRecord struct {
	Benchmark    string  `json:"benchmark"`
	Path         string  `json:"path"`
	Workers      int     `json:"workers"`
	MsPerOp      float64 `json:"ms_per_op"`
	SpeedupVsRow float64 `json:"speedup_vs_row"`
}

// learnPhaseSplit is one serial session's model-side wall clock broken
// down by phase: weight and propagate are the forest's two update
// phases (Forest.PhaseTimes — fused descent + reweighting + resample,
// then move commits); score and update are the learner's coarser split
// (core.Progress — selection scoring vs folding rounds in, so update
// covers weight + propagate + glue). Purely observational: it shows
// whether a session is scoring- or propagation-bound without a
// profiler, and how the update side divides between its phases.
type learnPhaseSplit struct {
	WeightMs    float64 `json:"weight_ms"`
	PropagateMs float64 `json:"propagate_ms"`
	ScoreMs     float64 `json:"score_ms"`
	UpdateMs    float64 `json:"update_ms"`
}

type modelBenchReport struct {
	Name              string             `json:"name"`
	PoolSize          int                `json:"pool_size"`
	Candidates        int                `json:"candidates"`
	Particles         int                `json:"particles"`
	ScoreParticles    int                `json:"score_particles"`
	Acquisitions      int                `json:"acquisitions"`
	BatchWidth        int                `json:"batch_width"`
	Results           []modelBenchRecord `json:"results"`
	SelectSerial      float64            `json:"select_steady_indexed_vs_row_serial"`
	LearnSerial       float64            `json:"learn_rounds_indexed_vs_row_serial"`
	LearnRowSerialMs  float64            `json:"learn_rounds_row_serial_ms"`
	LearnIdxSerialMs  float64            `json:"learn_rounds_indexed_serial_ms"`
	LearnPhases       learnPhaseSplit    `json:"learn_rounds_serial_phase_split"`
	MeetsSpeedupFloor bool               `json:"meets_2x_select_speedup_floor"`
	MeetsLearnFloor   bool               `json:"meets_learn_rounds_regression_floor"`
	MeetsLearnCeiling bool               `json:"meets_learn_rounds_ms_ceiling"`
}

// learnRoundsFloor is the LearnRounds indexed-vs-row serial floor the
// model-bench CI job enforces. It is a no-regression guard, not a
// speedup claim: whole sessions are dominated by model updates that
// both paths share (see BenchmarkLearnRounds), so the enforceable
// contract is that cache maintenance never makes full sessions
// meaningfully slower than row re-descent, while steady-state
// selection keeps its ≥2x floor. Set below 1.0 only to absorb CI
// runner noise on a ~1.0x measurement.
const learnRoundsFloor = 0.75

// learnRoundsCeilingMs is the absolute wall-clock ceiling CI enforces
// on one serial row-path LearnRounds session (ms/session). The
// propagation-path work (fused descent, round-batched folds, batch
// partition routing) brought the dev-shape session from ~47 ms to
// ~33 ms; the ceiling is set far above the measured value because CI
// runners vary widely in absolute speed — it exists to catch
// algorithmic regressions that multiply session cost, not percentage
// drift the ratio floors already guard.
const learnRoundsCeilingMs = 85.0

// TestRecordModelBenchmark regenerates BENCH_model.json — the
// indexed-vs-row scoring trajectory at 1/4/8 workers — and enforces
// two serial floors for the pool-interned path over the row path
// (serial, so the ratios are purely algorithmic: cached routes vs
// full re-descent): ≥2x on steady-state SelectBatch, and the
// no-regression learnRoundsFloor on LearnRounds (whole update-heavy
// learning sessions; see BenchmarkLearnRounds for why a large session
// ratio is not attainable while updates dominate). It only runs when
// ALIC_RECORD_MODEL_BENCH is set (CI's model-bench job, or locally:
//
//	ALIC_RECORD_MODEL_BENCH=BENCH_model.json go test -run TestRecordModelBenchmark .
func TestRecordModelBenchmark(t *testing.T) {
	out := os.Getenv("ALIC_RECORD_MODEL_BENCH")
	if out == "" {
		t.Skip("set ALIC_RECORD_MODEL_BENCH=<path> to record the model-scoring benchmark")
	}
	opts := benchModelOptions(1, false)
	rep := modelBenchReport{
		Name:           "model-scoring",
		PoolSize:       len(benchModelPool()),
		Candidates:     opts.NCand,
		Particles:      opts.Tree.Particles,
		ScoreParticles: opts.Tree.ScoreParticles,
		Acquisitions:   opts.NMax,
		BatchWidth:     opts.Batch,
	}
	bench := func(name string, workers int, rowOnly bool) float64 {
		var fn func(b *testing.B, workers int, rowOnly bool)
		switch name {
		case "SelectBatchSteady":
			fn = benchSelectSteady
		case "LearnRounds":
			fn = benchLearnRounds
		}
		// One in-process measurement swings ±30% on a loaded runner;
		// scheduler and GC interference are strictly additive, so the
		// minimum of a few repeats is the noise-robust estimator, and
		// the floors gate ratios of minima.
		best := math.Inf(1)
		for rep := 0; rep < 3; rep++ {
			res := testing.Benchmark(func(b *testing.B) { fn(b, workers, rowOnly) })
			if ms := float64(res.NsPerOp()) / 1e6; ms < best {
				best = ms
			}
		}
		return best
	}
	for _, name := range []string{"SelectBatchSteady", "LearnRounds"} {
		for _, w := range []int{1, 4, 8} {
			rowMs := bench(name, w, true)
			idxMs := bench(name, w, false)
			rep.Results = append(rep.Results,
				modelBenchRecord{Benchmark: name, Path: "row", Workers: w, MsPerOp: rowMs, SpeedupVsRow: 1},
				modelBenchRecord{Benchmark: name, Path: "indexed", Workers: w, MsPerOp: idxMs, SpeedupVsRow: rowMs / idxMs})
			if w == 1 {
				switch name {
				case "SelectBatchSteady":
					rep.SelectSerial = rowMs / idxMs
				case "LearnRounds":
					rep.LearnSerial = rowMs / idxMs
					rep.LearnRowSerialMs = rowMs
					rep.LearnIdxSerialMs = idxMs
				}
			}
			t.Logf("%s/workers=%d: row %.2f ms/op, indexed %.2f ms/op (%.2fx)", name, w, rowMs, idxMs, rowMs/idxMs)
		}
	}
	rep.LearnPhases = measureLearnPhases(t)
	rep.MeetsSpeedupFloor = rep.SelectSerial >= 2
	rep.MeetsLearnFloor = rep.LearnSerial >= learnRoundsFloor
	rep.MeetsLearnCeiling = rep.LearnRowSerialMs <= learnRoundsCeilingMs
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	if !rep.MeetsSpeedupFloor {
		t.Fatalf("steady-state indexed SelectBatch is %.2fx over the row path at workers=1, want >= 2x", rep.SelectSerial)
	}
	if !rep.MeetsLearnFloor {
		t.Fatalf("indexed LearnRounds is %.2fx over the row path at workers=1, want >= %.2fx (cache maintenance must not slow whole sessions down)", rep.LearnSerial, learnRoundsFloor)
	}
	if !rep.MeetsLearnCeiling {
		t.Fatalf("serial row-path LearnRounds session took %.1f ms, want <= %.1f ms (propagation-path wall-clock ceiling)", rep.LearnRowSerialMs, learnRoundsCeilingMs)
	}
}

// measureLearnPhases runs one serial indexed learning session and
// returns its model-side phase split: the forest's weight/propagate
// wall clock (Forest.PhaseTimes) nested inside the learner's
// score/update split (core.Progress).
func measureLearnPhases(t *testing.T) learnPhaseSplit {
	t.Helper()
	opts := benchModelOptions(1, false)
	var last core.Progress
	opts.Progress = func(p core.Progress) { last = p }
	pool := benchModelPool()
	l, err := core.New(opts, pool, &benchOracle{pool: pool, r: rng.New(4)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Run(nil); err != nil {
		t.Fatal(err)
	}
	weight, propagate := l.Model().(interface {
		PhaseTimes() (weight, propagate time.Duration)
	}).PhaseTimes()
	return learnPhaseSplit{
		WeightMs:    float64(weight) / 1e6,
		PropagateMs: float64(propagate) / 1e6,
		ScoreMs:     last.ScoreSeconds * 1e3,
		UpdateMs:    last.UpdateSeconds * 1e3,
	}
}
